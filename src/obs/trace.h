// Scoped-span tracer with per-thread buffers and Chrome trace_event export.
//
// Spans are RAII: construct a TraceSpan at the top of the region, and its
// destructor records one event (name, start, duration, thread, nesting
// depth). Each thread appends to its own buffer, so recording never blocks
// other threads; export walks every buffer under the registration mutex.
//
// Tracing is off by default. A disabled TraceSpan costs one relaxed atomic
// load — cheap enough to leave in hot paths like the predictor's iteration
// loop. Enable with Tracer::Global().SetEnabled(true) (the tools' --trace-out
// and --metrics flags do this), then:
//
//   * ChromeTraceJson() emits the Chrome trace_event JSON array format —
//     save it and open via chrome://tracing or https://ui.perfetto.dev;
//   * SummaryTable() aggregates spans by name into a flat table (count,
//     total/mean/max wall time) — the per-stage wall-time breakdown.
#ifndef PANDIA_SRC_OBS_TRACE_H_
#define PANDIA_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/table.h"
#include "src/util/thread_annotations.h"

namespace pandia {
namespace obs {

inline constexpr int64_t kNoArg = INT64_MIN;

struct TraceEvent {
  std::string name;
  int64_t start_ns = 0;  // since the tracer's epoch
  int64_t dur_ns = 0;
  int depth = 0;         // nesting depth at the time the span opened
  uint32_t tid = 0;      // dense per-tracer thread id, starting at 1
  int64_t arg = kNoArg;  // optional integer payload ("args":{"n":...})
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Process-wide tracer used by the pipeline instrumentation.
  static Tracer& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all recorded events (buffers stay registered).
  void Clear() PANDIA_EXCLUDES(mu_);

  // All events recorded so far, in per-thread order.
  std::vector<TraceEvent> Events() const PANDIA_EXCLUDES(mu_);

  // Chrome trace_event JSON ({"traceEvents":[...]}, "X" complete events,
  // microsecond timestamps).
  std::string ChromeTraceJson() const;

  // Flat summary aggregated by span name: count, total ms, mean us, max us.
  Table SummaryTable() const;

  // --- used by TraceSpan ---
  struct ThreadBuffer {
    // serializes Append vs export
    util::Mutex mu{"obs.trace_buffer", util::kLockRankObsTraceBuffer};
    std::vector<TraceEvent> events PANDIA_GUARDED_BY(mu);
    int open_depth = 0;  // touched only by the owning thread
    uint32_t tid = 0;    // written once at registration, then read-only
  };
  // This thread's buffer, registered with the tracer on first use.
  ThreadBuffer& LocalBuffer() PANDIA_EXCLUDES(mu_);
  int64_t NowNs() const;

 private:
  std::atomic<bool> enabled_{false};
  uint64_t id_ = 0;  // process-unique, assigned at construction
  int64_t epoch_ns_ = 0;
  // Guards buffers_ registration and iteration; individual events are
  // guarded per buffer, so recording threads never contend on the tracer.
  mutable util::Mutex mu_{"obs.trace", util::kLockRankObsTrace};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ PANDIA_GUARDED_BY(mu_);
};

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, int64_t arg = kNoArg)
      : TraceSpan(Tracer::Global(), name, arg) {}
  TraceSpan(Tracer& tracer, std::string_view name, int64_t arg = kNoArg);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;  // null when tracing was disabled at entry
  Tracer::ThreadBuffer* buffer_ = nullptr;
  std::string name_;
  int64_t start_ns_ = 0;
  int depth_ = 0;
  int64_t arg_ = kNoArg;
};

}  // namespace obs
}  // namespace pandia

#endif  // PANDIA_SRC_OBS_TRACE_H_
