// Always-on fixed-capacity flight recorder: a ring buffer of the most
// recent events (what happened, when, and whether it succeeded), kept
// resident so the last moments before an incident can be dumped on demand —
// from a RECORDER wire request, a crash handler, or a test.
//
// Unlike the event log (leveled, rate-limited, streamed to sinks), the
// recorder never filters and never writes anywhere until asked: Record() is
// a mutex acquisition plus a couple of string copies into a preallocated
// slot, cheap enough to call on every request the serving daemon handles.
// When the ring wraps, the oldest events are overwritten and dropped()
// counts what was lost.
//
// Events carry a monotonically increasing sequence number, so a dump
// (oldest-first) is totally ordered and can be diffed against an external
// record such as the serve journal.
#ifndef PANDIA_SRC_OBS_FLIGHT_RECORDER_H_
#define PANDIA_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pandia {
namespace obs {

struct FlightEvent {
  uint64_t seq = 0;       // 1-based, assigned by Record()
  int64_t timestamp_ns = 0;  // steady-clock, comparable within the process
  std::string kind;       // event class, e.g. "request", "journal"
  std::string detail;     // free text, e.g. "ADMIT job=a1" (no newlines)
  bool ok = true;         // outcome
};

class FlightRecorder {
 public:
  // `capacity` slots are preallocated; must be >= 1.
  explicit FlightRecorder(size_t capacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Process-wide recorder (capacity 256).
  static FlightRecorder& Global();

  // Appends one event, overwriting the oldest when full. Assigns seq and
  // timestamp; safe from any thread.
  void Record(std::string_view kind, std::string_view detail, bool ok = true)
      PANDIA_EXCLUDES(mu_);

  // The retained events, oldest first.
  std::vector<FlightEvent> Dump() const PANDIA_EXCLUDES(mu_);

  // Lifetime totals: events ever recorded, and events lost to wrapping.
  uint64_t recorded() const PANDIA_EXCLUDES(mu_);
  uint64_t dropped() const PANDIA_EXCLUDES(mu_);

  size_t capacity() const { return ring_.size(); }

  void Clear() PANDIA_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_{"obs.flight_recorder",
                          util::kLockRankObsFlightRecorder};
  std::vector<FlightEvent> ring_;  // fixed size; slot i valid when seq > 0
  size_t next_ PANDIA_GUARDED_BY(mu_) = 0;  // ring_ index of the next write
  uint64_t recorded_ PANDIA_GUARDED_BY(mu_) = 0;
};

// One dump line: "seq=N t=SECONDS kind detail ok|err". Timestamps are
// rendered relative to `origin_ns` (pass the first event's timestamp for a
// dump starting at 0.000000).
std::string FormatFlightEvent(const FlightEvent& event, int64_t origin_ns);

}  // namespace obs
}  // namespace pandia

#endif  // PANDIA_SRC_OBS_FLIGHT_RECORDER_H_
