#include "src/obs/prediction_trace.h"

#include <algorithm>
#include <map>

#include "src/util/strings.h"

namespace pandia {
namespace obs {

void PredictionTrace::Clear() {
  iterations.clear();
  converged = false;
  final_delta = 0.0;
}

std::string PredictionTrace::Summary() const {
  std::string out = StrFormat("%zu iterations, %s, final delta %.3g\n",
                              iterations.size(),
                              converged ? "converged" : "NOT converged", final_delta);
  out += StrFormat("  %-5s %-10s %-8s %-8s %-8s %-10s %s\n", "iter", "max_delta",
                   "s_min", "s_mean", "s_max", "bottleneck", "dampened");
  for (const PredictionIterationTrace& iter : iterations) {
    double s_min = 0.0;
    double s_max = 0.0;
    double s_mean = 0.0;
    if (!iter.thread_slowdowns.empty()) {
      s_min = *std::min_element(iter.thread_slowdowns.begin(),
                                iter.thread_slowdowns.end());
      s_max = *std::max_element(iter.thread_slowdowns.begin(),
                                iter.thread_slowdowns.end());
      for (double s : iter.thread_slowdowns) {
        s_mean += s;
      }
      s_mean /= static_cast<double>(iter.thread_slowdowns.size());
    }
    // Modal bottleneck: the ResourceIndex binding the most threads.
    std::map<int, int> bottleneck_counts;
    for (int b : iter.thread_bottlenecks) {
      ++bottleneck_counts[b];
    }
    int modal = -1;
    int modal_count = 0;
    for (const auto& [resource, count] : bottleneck_counts) {
      if (count > modal_count) {
        modal = resource;
        modal_count = count;
      }
    }
    out += StrFormat("  %-5d %-10.3g %-8.3f %-8.3f %-8.3f %-10d %s\n", iter.iteration,
                     iter.max_delta, s_min, s_mean, s_max, modal,
                     iter.dampened ? "yes" : "no");
  }
  return out;
}

}  // namespace obs
}  // namespace pandia
