// Rack-scale scheduling — the last §8 future-work item: "extend Pandia from
// scheduling a single workload on a single machine to the scheduling of
// multiple workloads on a rack-scale system".
//
// A rack is a set of machines (possibly of different types), each described
// by its machine description. Jobs arrive with one workload description per
// machine type (descriptions are machine-specific, §4). The scheduler
// assigns each job to one machine and one placement on that machine's free
// hardware threads, using the co-scheduling predictor to account for the
// jobs already running there.
#ifndef PANDIA_SRC_RACK_RACK_H_
#define PANDIA_SRC_RACK_RACK_H_

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/co_schedule.h"
#include "src/topology/placement.h"
#include "src/workload_desc/description.h"

namespace pandia {
namespace rack {

struct RackMachine {
  std::string name;  // instance name, e.g. "node0"
  MachineDescription description;
};

struct JobRequest {
  std::string name;
  // Workload description per machine *type* (MachineDescription.topo.name).
  // A job can only be placed on machines whose type it has a description
  // for.
  std::map<std::string, WorkloadDescription> descriptions;
  // Threads the job wants; the scheduler may trim to what fits.
  int requested_threads = 0;
};

struct Assignment {
  std::string job;
  int machine_index = -1;  // -1: the job could not be placed
  std::optional<Placement> placement;
  // Predicted speedup (relative to the job's t1 on that machine type) under
  // the machine's predicted co-location at assignment time.
  double predicted_speedup = 0.0;
};

enum class Policy {
  kFirstFit,           // first machine with room, best placement there
  kBestSpeedup,        // machine+placement maximizing the job's own speedup
  kLeastInterference,  // maximize the sum of speedups of all jobs on the
                       // chosen machine (new job included)
};

std::string PolicyName(Policy policy);

// Builds a placement with the given per-socket loads using only free
// hardware threads (free[c] in [0, threads_per_core]). Doubles take cores
// with two free slots; singles prefer half-occupied cores. Returns nullopt
// when the loads do not fit.
std::optional<Placement> PlaceLoadsOnFreeCores(const MachineTopology& topo,
                                               std::span<const SocketLoad> loads,
                                               const std::vector<uint8_t>& free);

class RackScheduler {
 public:
  explicit RackScheduler(std::vector<RackMachine> machines,
                         PredictionOptions options = {});

  // Assigns jobs online, in order. Jobs that fit nowhere get
  // machine_index = -1.
  std::vector<Assignment> Schedule(std::span<const JobRequest> jobs, Policy policy);

  const std::vector<RackMachine>& machines() const { return machines_; }

  // Jobs currently assigned to a machine (for inspection and validation).
  // Descriptions are stored by value, so assignments outlive the requests.
  struct Resident {
    WorkloadDescription description;
    Placement placement;
  };
  const std::vector<Resident>& ResidentsOf(int machine_index) const;

  // Clears all assignments.
  void Reset();

 private:
  struct Candidate {
    Placement placement;
    double job_speedup = 0.0;
    double total_speedup = 0.0;  // net change in the machine's aggregate speedup
  };

  std::optional<Candidate> BestCandidateOn(int machine_index, const JobRequest& job,
                                           Policy policy) const;
  std::vector<uint8_t> FreeThreads(int machine_index) const;

  std::vector<RackMachine> machines_;
  PredictionOptions options_;
  std::vector<std::vector<Resident>> residents_;
};

}  // namespace rack
}  // namespace pandia

#endif  // PANDIA_SRC_RACK_RACK_H_
