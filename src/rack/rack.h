// Rack-scale scheduling — the last §8 future-work item: "extend Pandia from
// scheduling a single workload on a single machine to the scheduling of
// multiple workloads on a rack-scale system".
//
// A rack is a set of machines (possibly of different types), each described
// by its machine description. Jobs arrive with one workload description per
// machine type (descriptions are machine-specific, §4). The scheduler
// assigns each job to one machine and one placement on that machine's free
// hardware threads, using the co-scheduling predictor to account for the
// jobs already running there.
//
// Two layers:
//
//   * `Rack` is the mutable online state: machines plus the named jobs
//     resident on them, with Admit / Depart / Move mutations that never
//     abort on bad input (StatusOr surface). This is what the long-running
//     placement service (src/serve) holds and journals.
//   * `RackScheduler` is the batch wrapper the offline experiments use:
//     Schedule() admits a whole job stream in order.
#ifndef PANDIA_SRC_RACK_RACK_H_
#define PANDIA_SRC_RACK_RACK_H_

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/co_schedule.h"
#include "src/predictor/prediction_cache.h"
#include "src/topology/placement.h"
#include "src/util/status.h"
#include "src/workload_desc/description.h"

namespace pandia {
namespace rack {

struct RackMachine {
  std::string name;  // instance name, e.g. "node0"
  MachineDescription description;
};

struct JobRequest {
  std::string name;
  // Workload description per machine *type* (MachineDescription.topo.name).
  // A job can only be placed on machines whose type it has a description
  // for.
  std::map<std::string, WorkloadDescription> descriptions;
  // Threads the job wants; the scheduler may trim to what fits.
  int requested_threads = 0;
};

// A named job resident on one rack machine. Descriptions are stored by
// value, so residents outlive the requests that admitted them.
struct RackJob {
  std::string name;
  WorkloadDescription description;  // for the host machine's type
  Placement placement;
  // WorkloadFingerprint(description), computed once at admission; folded
  // into the host machine's joint-prediction cache key.
  uint64_t workload_fingerprint = 0;

  // Telemetry resident with the job (see Rack::Telemetry). The predicted
  // speedup under the co-location that existed when the job was placed —
  // the baseline every later degradation measurement compares against.
  double speedup_at_admit = 0.0;
  // Rack mutation sequence number assigned to the admission.
  uint64_t admit_seq = 0;
  // Times the job has been re-placed (Move) since admission.
  int moves = 0;
  // Host machine's mutation-counter value when the job landed there (at
  // admission, or re-baselined at each move) — the subtrahend for the
  // co-runner event delta.
  uint64_t machine_events_at_placement = 0;
};

struct Assignment {
  std::string job;
  int machine_index = -1;  // -1: the job could not be placed
  std::optional<Placement> placement;
  // Predicted speedup (relative to the job's t1 on that machine type) under
  // the machine's predicted co-location at assignment time.
  double predicted_speedup = 0.0;
};

enum class Policy {
  kFirstFit,           // first machine with room, best placement there
  kBestSpeedup,        // machine+placement maximizing the job's own speedup
  kLeastInterference,  // maximize the sum of speedups of all jobs on the
                       // chosen machine (new job included)
};

std::string PolicyName(Policy policy);
StatusOr<Policy> PolicyFromName(const std::string& name);

// Builds a placement with the given per-socket loads using only free
// hardware threads (free[c] in [0, threads_per_core]). Doubles take cores
// with two free slots; singles prefer half-occupied cores. Returns nullopt
// when the loads do not fit.
std::optional<Placement> PlaceLoadsOnFreeCores(const MachineTopology& topo,
                                               std::span<const SocketLoad> loads,
                                               const std::vector<uint8_t>& free);

// Mutable rack state with online admission. All mutations validate their
// inputs and report recoverable failures as Status — a malformed request
// must never take down a daemon holding live placement state.
//
// Thread safety: externally synchronized. A single mutation (Admit) fans
// read-only probes out over ParallelFor worker threads internally, so an
// internal per-object lock would be held across its own workers; instead
// the owner serializes mutations and guards the object (the placement
// service holds its Rack as PANDIA_GUARDED_BY(mu_)). Concurrent const
// access without a mutation in flight is safe — shared caches the const
// paths touch (PredictionCache, metrics) lock internally.
class Rack {
 public:
  // `options.common.jobs` fans the per-machine admission probes out over
  // worker threads; `options.common.use_cache` memoizes per-machine joint
  // predictions in PredictionCache::Global() under full resident-set
  // fingerprints (see PredictMachine).
  explicit Rack(std::vector<RackMachine> machines, PredictionOptions options = {});

  const std::vector<RackMachine>& machines() const { return machines_; }
  const PredictionOptions& options() const { return options_; }

  // Jobs resident on one machine, in admission order (the order the joint
  // predictor sees them in — journal replay reproduces it exactly).
  const std::vector<RackJob>& JobsOn(int machine_index) const;
  bool Has(const std::string& job) const;
  // Machine index hosting `job`, or NotFound.
  [[nodiscard]] StatusOr<int> MachineOf(const std::string& job) const;
  int JobCount() const;

  // Free hardware threads per core of one machine (threads_per_core minus
  // resident occupancy). `exclude_job`, when non-null, treats that resident
  // job's threads as free (re-placement what-ifs).
  std::vector<uint8_t> FreeThreads(int machine_index,
                                   const std::string* exclude_job = nullptr) const;
  int FreeThreadCount(int machine_index) const;

  struct Candidate {
    Placement placement;
    double job_speedup = 0.0;
    double total_speedup = 0.0;  // net change in the machine's aggregate speedup
  };

  // Best placement for `job` on one machine against the current residents
  // (nullopt when the job has no description for the machine's type or
  // nothing fits). `exclude_job` evaluates the machine as if that resident
  // had already left — the re-placement path of departures and rebalancing.
  std::optional<Candidate> BestCandidateOn(int machine_index, const JobRequest& job,
                                           Policy policy,
                                           const std::string* exclude_job = nullptr) const;

  // Online admission: probes every machine (fanning out over
  // options().common.jobs workers), applies the best candidate under
  // `policy`, and returns the resulting assignment. Errors: invalid
  // request, duplicate job name, no description for any machine type in
  // the rack, or no machine with a feasible placement.
  [[nodiscard]] StatusOr<Assignment> Admit(const JobRequest& job, Policy policy);

  // Applies a recorded admission decision without searching (journal
  // replay): validates the description and that `placement` fits the
  // machine's free threads, then places the job.
  [[nodiscard]] Status AdmitAt(const std::string& name, int machine_index,
                               const WorkloadDescription& description,
                               const Placement& placement);

  // Removes a job and returns the machine index it was resident on.
  [[nodiscard]] StatusOr<int> Depart(const std::string& job);

  // Re-places a resident job at `placement` on `machine_index` (same or
  // different machine), keeping its description. The moved job goes to the
  // end of the destination machine's resident order, exactly as a
  // depart-and-readmit would — journal replay reproduces the order.
  [[nodiscard]] Status Move(const std::string& job, int machine_index,
                            const Placement& placement);

  // Joint prediction of one machine's residents, in resident order (empty
  // machine: empty vector). Results are memoized under a fingerprint of
  // the full resident set — machine, options, and every (workload,
  // placement) pair — so a stale hit cannot survive any membership or
  // placement change; PredictionCache::BumpGeneration() additionally
  // hard-invalidates after departures.
  std::vector<Prediction> PredictMachine(int machine_index) const;

  // Per-job telemetry snapshot: the admission-time baseline, the current
  // joint prediction, and the activity deltas the PANDA-style antagonist
  // analysis needs (how much has happened around this job since it was
  // placed). Jobs appear machine by machine, in resident order.
  struct JobTelemetry {
    std::string name;
    int machine_index = -1;
    std::string machine;  // instance name
    int threads = 0;
    // Predicted speedup / slowdown under the co-location at admission
    // (slowdown = 1/speedup, the paper's preferred orientation).
    double speedup_at_admit = 0.0;
    double slowdown_at_admit = 0.0;
    // Joint prediction under the co-location right now; the ratio against
    // the admit baseline is the job's predicted degradation.
    double current_speedup = 0.0;
    uint64_t admit_seq = 0;  // rack mutation seq of the admission
    int moves = 0;           // re-placements since admission
    // Rack mutations touching the job's host machine since the job landed
    // there (co-runner admits/departs/moves; the job's own landing is
    // excluded). Non-zero deltas mark jobs whose environment changed after
    // placement — the candidates for degradation checks.
    uint64_t co_events = 0;
  };
  struct TelemetrySnapshot {
    uint64_t mutation_seq = 0;  // total rack mutations so far
    std::vector<JobTelemetry> jobs;
  };
  // Computes the current joint prediction per machine, so cost is one
  // (memoized) joint solve per occupied machine.
  TelemetrySnapshot Telemetry() const;

  // Clears all residents.
  void Reset();

  // A full copy of the rack's mutable state: every resident (including its
  // telemetry baseline fields) plus the mutation counters Telemetry()
  // reports. Two uses: the placement service's journal snapshots (compaction
  // serializes a SavedState, restart restores it) and transactional rollback
  // (capture before a mutation, restore if the journal append fails, so
  // TELEMETRY is byte-identical to never having tried).
  struct SavedJob {
    int machine_index = -1;
    RackJob job;
  };
  struct SavedState {
    uint64_t mutation_seq = 0;
    // One entry per machine, same order as machines().
    std::vector<uint64_t> machine_events;
    // Machine-major, resident order preserved — RestoreState reproduces the
    // exact joint-solve order, so predictions match the saved rack's.
    std::vector<SavedJob> jobs;
  };
  SavedState SaveState() const;

  // Replaces all resident state with `state`. Validates machine indices,
  // descriptions, and placement fits before touching anything, so a failed
  // restore leaves the rack unchanged. Does not bump mutation counters —
  // restoring is bookkeeping, not a rack event. Workload fingerprints are
  // recomputed from the descriptions.
  [[nodiscard]] Status RestoreState(const SavedState& state);

 private:
  std::optional<Candidate> BestCandidateAgainst(int machine_index,
                                                const JobRequest& job, Policy policy,
                                                const std::vector<uint8_t>& free) const;
  std::vector<Prediction> PredictResidents(int machine_index,
                                           std::span<const RackJob* const> jobs) const;
  Status ValidatePlacementFits(int machine_index, const Placement& placement,
                               const std::vector<uint8_t>& free) const;

  std::vector<RackMachine> machines_;
  PredictionOptions options_;
  PredictionCache* cache_ = nullptr;  // null when options_.common.use_cache is off
  std::vector<uint64_t> machine_context_;  // MachineOptionsFingerprint per machine
  // One persistent solver engine per machine. Building an engine copies the
  // machine description and derives its ResourceIndex; hoisting that out of
  // the per-candidate loop keeps Admit's fan-out allocation-free in the
  // solver (each probe worker reuses its thread-local scratch arena).
  std::vector<CoSchedulePredictor> engines_;
  std::vector<std::vector<RackJob>> residents_;
  // Telemetry bookkeeping: every successful Admit/AdmitAt/Depart/Move bumps
  // mutation_seq_ and the touched machines' machine_events_ entries.
  uint64_t mutation_seq_ = 0;
  std::vector<uint64_t> machine_events_;
};

// Batch scheduling over a Rack: admits a job stream in order. Kept for the
// offline experiments (bench/ext_rack) and as the simplest entry point.
class RackScheduler {
 public:
  explicit RackScheduler(std::vector<RackMachine> machines,
                         PredictionOptions options = {});

  // Assigns jobs online, in order. Jobs that fit nowhere get
  // machine_index = -1. Duplicate request names are uniquified internally
  // (the returned Assignment keeps the request's name).
  std::vector<Assignment> Schedule(std::span<const JobRequest> jobs, Policy policy);

  const std::vector<RackMachine>& machines() const { return rack_.machines(); }
  const std::vector<RackJob>& ResidentsOf(int machine_index) const {
    return rack_.JobsOn(machine_index);
  }

  Rack& rack() { return rack_; }
  const Rack& rack() const { return rack_; }

  // Clears all assignments.
  void Reset() { rack_.Reset(); }

 private:
  Rack rack_;
};

}  // namespace rack
}  // namespace pandia

#endif  // PANDIA_SRC_RACK_RACK_H_
