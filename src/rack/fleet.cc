#include "src/rack/fleet.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {
namespace rack {
namespace {

// Virtual nodes per shard. Enough to spread the keyspace evenly across a
// handful of shards; the constant is part of the routing function, so
// changing it re-routes names and must be treated as a format change.
constexpr int kVirtualNodesPerShard = 32;

}  // namespace

std::string ShardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kConsistentHash:
      return "consistent-hash";
    case ShardPolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "consistent-hash";
}

StatusOr<ShardPolicy> ShardPolicyFromName(const std::string& name) {
  if (name == "consistent-hash") {
    return ShardPolicy::kConsistentHash;
  }
  if (name == "least-loaded") {
    return ShardPolicy::kLeastLoaded;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown shard policy '%s' (want consistent-hash or least-loaded)",
      name.c_str()));
}

uint64_t FleetHash(std::string_view text) {
  // FNV-1a, 64-bit offset basis / prime.
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Fleet::Fleet(int num_shards, ShardPolicy policy)
    : num_shards_(num_shards), policy_(policy) {
  PANDIA_CHECK(num_shards >= 1);
  if (policy_ == ShardPolicy::kConsistentHash) {
    ring_.reserve(static_cast<size_t>(num_shards_) * kVirtualNodesPerShard);
    for (int shard = 0; shard < num_shards_; ++shard) {
      for (int v = 0; v < kVirtualNodesPerShard; ++v) {
        const std::string label = StrFormat("shard%d#%d", shard, v);
        ring_.push_back(VirtualNode{FleetHash(label), shard});
      }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const VirtualNode& a, const VirtualNode& b) {
                if (a.position != b.position) {
                  return a.position < b.position;
                }
                return a.shard < b.shard;
              });
  }
}

std::vector<int> Fleet::ShardOrder(std::string_view job_name,
                                   std::span<const ShardLoad> loads) const {
  std::vector<int> order;
  order.reserve(static_cast<size_t>(num_shards_));
  if (policy_ == ShardPolicy::kConsistentHash) {
    // Clockwise ring walk from the name's position, collecting each shard
    // the first time one of its virtual nodes appears.
    const uint64_t position = FleetHash(job_name);
    const auto start = std::lower_bound(
        ring_.begin(), ring_.end(), position,
        [](const VirtualNode& node, uint64_t p) { return node.position < p; });
    std::vector<uint8_t> seen(static_cast<size_t>(num_shards_), 0);
    const size_t begin = static_cast<size_t>(start - ring_.begin());
    for (size_t step = 0;
         step < ring_.size() && order.size() < static_cast<size_t>(num_shards_);
         ++step) {
      const int shard = ring_[(begin + step) % ring_.size()].shard;
      if (!seen[static_cast<size_t>(shard)]) {
        seen[static_cast<size_t>(shard)] = 1;
        order.push_back(shard);
      }
    }
    return order;
  }
  // Least-loaded: most free threads, then fewest jobs, then lowest index.
  // stable_sort over iota keeps equal keys in index order, so the order is
  // a pure function of the load vector.
  PANDIA_CHECK(loads.size() == static_cast<size_t>(num_shards_));
  order.resize(static_cast<size_t>(num_shards_));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&loads](int a, int b) {
    const ShardLoad& la = loads[static_cast<size_t>(a)];
    const ShardLoad& lb = loads[static_cast<size_t>(b)];
    if (la.free_threads != lb.free_threads) {
      return la.free_threads > lb.free_threads;
    }
    if (la.jobs != lb.jobs) {
      return la.jobs < lb.jobs;
    }
    return a < b;
  });
  return order;
}

int Fleet::PreferredShard(std::string_view job_name,
                          std::span<const ShardLoad> loads) const {
  return ShardOrder(job_name, loads).front();
}

}  // namespace rack
}  // namespace pandia
