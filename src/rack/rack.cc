#include "src/rack/rack.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/parallel.h"
#include "src/util/strings.h"

namespace pandia {
namespace rack {
namespace {

// Per-core thread counts for `t` threads on one socket of a partially
// occupied machine. Spread variant: empty cores first (no co-location),
// then SMT slots next to residents, then own SMT pairs. Packed variant:
// fill each empty core completely before touching the next.
bool BuildSocketVariant(const MachineTopology& topo, int socket, int t, bool spread,
                        const std::vector<uint8_t>& free, std::vector<uint8_t>& out) {
  const int first = topo.FirstCoreOfSocket(socket);
  std::vector<int> empty;  // free == 2
  std::vector<int> half;   // free == 1
  for (int i = 0; i < topo.cores_per_socket; ++i) {
    const int core = first + i;
    if (free[core] >= 2) {
      empty.push_back(core);
    } else if (free[core] == 1) {
      half.push_back(core);
    }
  }
  int remaining = t;
  if (spread) {
    for (int core : empty) {
      if (remaining == 0) {
        break;
      }
      out[core] += 1;
      --remaining;
    }
    for (int core : half) {
      if (remaining == 0) {
        break;
      }
      out[core] += 1;
      --remaining;
    }
    for (int core : empty) {  // second pass: own SMT pairs
      if (remaining == 0) {
        break;
      }
      out[core] += 1;
      --remaining;
    }
  } else {
    for (int core : empty) {
      while (remaining > 0 && out[core] < free[core]) {
        out[core] += 1;
        --remaining;
      }
    }
    for (int core : half) {
      if (remaining == 0) {
        break;
      }
      out[core] += 1;
      --remaining;
    }
  }
  return remaining == 0;
}

int FreeOnSocket(const MachineTopology& topo, int socket,
                 const std::vector<uint8_t>& free) {
  int total = 0;
  for (int i = 0; i < topo.cores_per_socket; ++i) {
    total += free[topo.FirstCoreOfSocket(socket) + i];
  }
  return total;
}

obs::Counter& AdmissionsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("rack.admissions");
  return counter;
}
obs::Counter& DeparturesCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("rack.departures");
  return counter;
}
obs::Counter& MovesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().counter("rack.moves");
  return counter;
}

}  // namespace

std::string PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kFirstFit:
      return "first-fit";
    case Policy::kBestSpeedup:
      return "best-speedup";
    case Policy::kLeastInterference:
      return "least-interference";
  }
  return "unknown";
}

StatusOr<Policy> PolicyFromName(const std::string& name) {
  if (name == "first-fit") {
    return Policy::kFirstFit;
  }
  if (name == "best-speedup") {
    return Policy::kBestSpeedup;
  }
  if (name == "least-interference") {
    return Policy::kLeastInterference;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown policy '%s' (want first-fit, best-speedup, or least-interference)",
      name.c_str()));
}

std::optional<Placement> PlaceLoadsOnFreeCores(const MachineTopology& topo,
                                               std::span<const SocketLoad> loads,
                                               const std::vector<uint8_t>& free) {
  PANDIA_CHECK(static_cast<int>(loads.size()) == topo.num_sockets);
  PANDIA_CHECK(static_cast<int>(free.size()) == topo.NumCores());
  std::vector<uint8_t> per_core(static_cast<size_t>(topo.NumCores()), 0);
  for (int s = 0; s < topo.num_sockets; ++s) {
    int doubles = loads[s].doubles;
    int singles = loads[s].singles;
    const int first = topo.FirstCoreOfSocket(s);
    // Doubles need fully free cores.
    for (int i = 0; i < topo.cores_per_socket && doubles > 0; ++i) {
      const int core = first + i;
      if (free[core] >= 2 && per_core[core] == 0) {
        per_core[core] = 2;
        --doubles;
      }
    }
    if (doubles > 0) {
      return std::nullopt;
    }
    // Singles prefer half-occupied cores, then untouched free cores.
    for (int pass = 0; pass < 2 && singles > 0; ++pass) {
      for (int i = 0; i < topo.cores_per_socket && singles > 0; ++i) {
        const int core = first + i;
        if (per_core[core] != 0) {
          continue;
        }
        const bool half = free[core] == 1;
        if ((pass == 0 && half) || (pass == 1 && free[core] >= 1)) {
          per_core[core] = 1;
          --singles;
        }
      }
    }
    if (singles > 0) {
      return std::nullopt;
    }
  }
  int total = std::accumulate(per_core.begin(), per_core.end(), 0);
  if (total == 0) {
    return std::nullopt;
  }
  return Placement(topo, std::move(per_core));
}

Rack::Rack(std::vector<RackMachine> machines, PredictionOptions options)
    : machines_(std::move(machines)), options_(options) {
  PANDIA_CHECK(!machines_.empty());
  residents_.resize(machines_.size());
  machine_events_.resize(machines_.size(), 0);
  // A convergence-trace hook disables memoization for the same reason
  // PredictCached does: a hit would silently skip recording.
  if (options_.common.use_cache && options_.common.trace == nullptr) {
    cache_ = &PredictionCache::Global();
  }
  machine_context_.reserve(machines_.size());
  engines_.reserve(machines_.size());
  for (const RackMachine& machine : machines_) {
    machine_context_.push_back(MachineOptionsFingerprint(machine.description, options_));
    engines_.emplace_back(machine.description, options_);
  }
}

const std::vector<RackJob>& Rack::JobsOn(int machine_index) const {
  PANDIA_CHECK(machine_index >= 0 &&
               static_cast<size_t>(machine_index) < residents_.size());
  return residents_[machine_index];
}

bool Rack::Has(const std::string& job) const { return MachineOf(job).ok(); }

StatusOr<int> Rack::MachineOf(const std::string& job) const {
  for (size_t m = 0; m < residents_.size(); ++m) {
    for (const RackJob& resident : residents_[m]) {
      if (resident.name == job) {
        return static_cast<int>(m);
      }
    }
  }
  return Status::NotFound(StrFormat("no job named '%s' is resident", job.c_str()));
}

int Rack::JobCount() const {
  size_t total = 0;
  for (const auto& residents : residents_) {
    total += residents.size();
  }
  return static_cast<int>(total);
}

std::vector<uint8_t> Rack::FreeThreads(int machine_index,
                                       const std::string* exclude_job) const {
  const MachineTopology& topo = machines_[machine_index].description.topo;
  std::vector<uint8_t> free(static_cast<size_t>(topo.NumCores()),
                            static_cast<uint8_t>(topo.threads_per_core));
  for (const RackJob& resident : residents_[machine_index]) {
    if (exclude_job != nullptr && resident.name == *exclude_job) {
      continue;
    }
    for (int c = 0; c < topo.NumCores(); ++c) {
      const int used = resident.placement.ThreadsOnCore(c);
      PANDIA_CHECK(free[c] >= used);
      free[c] = static_cast<uint8_t>(free[c] - used);
    }
  }
  return free;
}

int Rack::FreeThreadCount(int machine_index) const {
  const std::vector<uint8_t> free = FreeThreads(machine_index);
  return std::accumulate(free.begin(), free.end(), 0);
}

std::vector<Prediction> Rack::PredictResidents(
    int machine_index, std::span<const RackJob* const> jobs) const {
  std::vector<Prediction> predictions;
  if (jobs.empty()) {
    return predictions;
  }
  // Joint context: machine + options + every resident (workload, placement)
  // pair, in order. Slot i of the joint solve is keyed by {context, i}: any
  // membership, ordering, or placement change produces a different context,
  // so entries cannot go stale by construction.
  uint64_t context = 0;
  if (cache_ != nullptr) {
    context = machine_context_[machine_index];
    for (const RackJob* job : jobs) {
      context = CombineFingerprints(context, job->workload_fingerprint);
      context = CombineFingerprints(context, PlacementFingerprint(job->placement));
    }
    predictions.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      std::optional<Prediction> hit =
          cache_->Lookup(PredictionCacheKey{context, static_cast<uint64_t>(i)});
      if (!hit.has_value()) {
        predictions.clear();
        break;
      }
      predictions.push_back(*std::move(hit));
    }
    if (predictions.size() == jobs.size()) {
      return predictions;
    }
  }
  std::vector<CoScheduleRequest> requests;
  requests.reserve(jobs.size());
  for (const RackJob* job : jobs) {
    requests.push_back(CoScheduleRequest{&job->description, job->placement});
  }
  predictions = engines_[machine_index].Predict(requests).jobs;
  if (cache_ != nullptr) {
    for (size_t i = 0; i < predictions.size(); ++i) {
      if (predictions[i].converged) {
        cache_->Insert(PredictionCacheKey{context, static_cast<uint64_t>(i)},
                       predictions[i]);
      }
    }
  }
  return predictions;
}

std::vector<Prediction> Rack::PredictMachine(int machine_index) const {
  PANDIA_CHECK(machine_index >= 0 &&
               static_cast<size_t>(machine_index) < residents_.size());
  std::vector<const RackJob*> jobs;
  jobs.reserve(residents_[machine_index].size());
  for (const RackJob& resident : residents_[machine_index]) {
    jobs.push_back(&resident);
  }
  return PredictResidents(machine_index, jobs);
}

std::optional<Rack::Candidate> Rack::BestCandidateOn(
    int machine_index, const JobRequest& job, Policy policy,
    const std::string* exclude_job) const {
  PANDIA_CHECK(machine_index >= 0 &&
               static_cast<size_t>(machine_index) < residents_.size());
  const RackMachine& machine = machines_[machine_index];
  const MachineTopology& topo = machine.description.topo;
  const auto desc_it = job.descriptions.find(topo.name);
  if (desc_it == job.descriptions.end()) {
    return std::nullopt;  // no description for this machine type
  }
  const WorkloadDescription& workload = desc_it->second;
  const std::vector<uint8_t> free = FreeThreads(machine_index, exclude_job);

  std::vector<const RackJob*> others;
  others.reserve(residents_[machine_index].size());
  for (const RackJob& resident : residents_[machine_index]) {
    if (exclude_job != nullptr && resident.name == *exclude_job) {
      continue;
    }
    others.push_back(&resident);
  }

  // Candidate generation (heuristic, bounded): for every feasible thread
  // count up to the request, split the threads over the k most-free sockets
  // (k = 1..num_sockets) as evenly as possible, in a spread and a packed
  // per-core variant.
  std::vector<int> socket_order(static_cast<size_t>(topo.num_sockets));
  std::iota(socket_order.begin(), socket_order.end(), 0);
  std::stable_sort(socket_order.begin(), socket_order.end(), [&](int a, int b) {
    return FreeOnSocket(topo, a, free) > FreeOnSocket(topo, b, free);
  });
  int capacity = 0;
  for (uint8_t f : free) {
    capacity += f;
  }
  const int want = std::min(job.requested_threads, capacity);
  if (want <= 0) {
    return std::nullopt;
  }

  // Aggregate speedup of the machine's residents before the new job, so
  // the interference objective scores the *change* caused by admitting it
  // (a plain after-sum would reward already-busy machines). Memoized: this
  // is the per-machine baseline that admissions re-read between mutations.
  double before_total = 0.0;
  for (const Prediction& prediction : PredictResidents(machine_index, others)) {
    before_total += prediction.speedup;
  }

  std::set<std::vector<uint8_t>> seen;
  std::optional<Candidate> best;
  const CoSchedulePredictor& engine = engines_[machine_index];
  // The joint-solve inputs and output are hoisted out of the candidate
  // loop: the residents' requests never change between candidates (only
  // the new job's trailing slot does), and PredictInto reuses the
  // prediction's vector capacity, so the scan performs no per-candidate
  // result allocations (ROADMAP item-2 leftover).
  std::vector<CoScheduleRequest> requests;
  requests.reserve(others.size() + 1);
  for (const RackJob* resident : others) {
    requests.push_back(
        CoScheduleRequest{&resident->description, resident->placement});
  }
  requests.push_back(CoScheduleRequest{
      &workload,
      Placement(topo, std::vector<uint8_t>(static_cast<size_t>(topo.NumCores()), 0))});
  CoSchedulePrediction joint;
  // Candidate joint solves chain a warm-start seed when the option is on:
  // consecutive candidates differ in one placement, so the previous
  // converged state is an excellent starting point. The seed is local to
  // this probe (Admit probes machines concurrently; each worker owns its
  // machine's seed) and self-invalidates whenever the joint thread count
  // changes.
  SolverWarmStart warm;
  SolverWarmStart* const warm_ptr = options_.warm_start ? &warm : nullptr;
  for (int total = 1; total <= want; ++total) {
    for (int k = 1; k <= topo.num_sockets; ++k) {
      for (const bool spread : {true, false}) {
        std::vector<uint8_t> per_core(static_cast<size_t>(topo.NumCores()), 0);
        int remaining = total;
        bool ok = true;
        for (int i = 0; i < k && ok; ++i) {
          const int share = remaining / (k - i) + (remaining % (k - i) != 0 ? 1 : 0);
          const int socket = socket_order[i];
          const int here = std::min(share, FreeOnSocket(topo, socket, free));
          ok = BuildSocketVariant(topo, socket, here, spread, free, per_core);
          remaining -= here;
        }
        if (!ok || remaining != 0) {
          continue;
        }
        if (!seen.insert(per_core).second) {
          continue;
        }
        const Placement placement(topo, per_core);

        // Joint prediction with the machine's residents. Not memoized: each
        // candidate is a novel transient context, and inserting thousands of
        // them would only churn the cache.
        requests.back().placement = placement;
        engine.PredictInto(requests, warm_ptr, &joint);
        Candidate candidate{placement, joint.jobs.back().speedup, 0.0};
        for (const Prediction& prediction : joint.jobs) {
          candidate.total_speedup += prediction.speedup;
        }
        candidate.total_speedup -= before_total;  // net rack-wide gain
        const bool better = [&] {
          if (!best.has_value()) {
            return true;
          }
          if (policy == Policy::kLeastInterference) {
            return candidate.total_speedup > best->total_speedup;
          }
          return candidate.job_speedup > best->job_speedup;
        }();
        if (better) {
          best = std::move(candidate);
        }
      }
    }
  }
  return best;
}

StatusOr<Assignment> Rack::Admit(const JobRequest& job, Policy policy) {
  if (job.name.empty()) {
    return Status::InvalidArgument("job name must be non-empty");
  }
  if (job.requested_threads <= 0) {
    return Status::InvalidArgument(
        StrFormat("job '%s' requests %d threads; want a positive count",
                  job.name.c_str(), job.requested_threads));
  }
  if (Has(job.name)) {
    return Status::FailedPrecondition(
        StrFormat("a job named '%s' is already resident", job.name.c_str()));
  }
  bool any_type_match = false;
  for (const RackMachine& machine : machines_) {
    const auto it = job.descriptions.find(machine.description.topo.name);
    if (it == job.descriptions.end()) {
      continue;
    }
    any_type_match = true;
    if (Status status = it->second.Validate(); !status.ok()) {
      return Status::InvalidArgument(
          StrFormat("job '%s', machine type '%s': %s", job.name.c_str(),
                    machine.description.topo.name.c_str(), status.message().c_str()));
    }
  }
  if (!any_type_match) {
    return Status::NotFound(
        StrFormat("job '%s' has no description for any machine type in the rack",
                  job.name.c_str()));
  }

  // Probe every machine concurrently; the probes only read rack state and
  // memoize through the (thread-safe) prediction cache. First-fit also
  // probes all machines — the result (lowest feasible index) is identical
  // to a serial scan, and the fan-out keeps admission latency flat.
  std::vector<std::optional<Candidate>> candidates(machines_.size());
  util::ParallelFor(machines_.size(), options_.common.jobs, [&](size_t m) {
    candidates[m] = BestCandidateOn(static_cast<int>(m), job, policy);
  });

  std::optional<Candidate> chosen;
  int chosen_machine = -1;
  for (size_t m = 0; m < machines_.size(); ++m) {
    if (!candidates[m].has_value()) {
      continue;
    }
    if (policy == Policy::kFirstFit) {
      chosen = std::move(candidates[m]);
      chosen_machine = static_cast<int>(m);
      break;
    }
    const bool better = [&] {
      if (!chosen.has_value()) {
        return true;
      }
      if (policy == Policy::kLeastInterference) {
        return candidates[m]->total_speedup > chosen->total_speedup;
      }
      return candidates[m]->job_speedup > chosen->job_speedup;
    }();
    if (better) {
      chosen = std::move(candidates[m]);
      chosen_machine = static_cast<int>(m);
    }
  }
  if (!chosen.has_value()) {
    return Status::FailedPrecondition(
        StrFormat("no machine can place job '%s' (requested %d threads)",
                  job.name.c_str(), job.requested_threads));
  }

  const MachineTopology& topo = machines_[chosen_machine].description.topo;
  const WorkloadDescription& description = job.descriptions.at(topo.name);
  RackJob resident{job.name, description, chosen->placement,
                   WorkloadFingerprint(description)};
  resident.speedup_at_admit = chosen->job_speedup;
  resident.admit_seq = ++mutation_seq_;
  resident.machine_events_at_placement = ++machine_events_[chosen_machine];
  residents_[chosen_machine].push_back(std::move(resident));
  AdmissionsCounter().Increment();

  Assignment assignment;
  assignment.job = job.name;
  assignment.machine_index = chosen_machine;
  assignment.placement = chosen->placement;
  assignment.predicted_speedup = chosen->job_speedup;
  return assignment;
}

Status Rack::ValidatePlacementFits(int machine_index, const Placement& placement,
                                   const std::vector<uint8_t>& free) const {
  const MachineTopology& topo = machines_[machine_index].description.topo;
  const std::vector<uint8_t>& per_core = placement.PerCore();
  if (static_cast<int>(per_core.size()) != topo.NumCores()) {
    return Status::InvalidArgument(
        StrFormat("placement covers %zu cores but machine '%s' has %d",
                  per_core.size(), machines_[machine_index].name.c_str(),
                  topo.NumCores()));
  }
  if (placement.TotalThreads() == 0) {
    return Status::InvalidArgument("placement has no threads");
  }
  for (size_t c = 0; c < per_core.size(); ++c) {
    if (per_core[c] > free[c]) {
      return Status::FailedPrecondition(StrFormat(
          "placement needs %d threads on core %zu of machine '%s' but only %d free",
          static_cast<int>(per_core[c]), c, machines_[machine_index].name.c_str(),
          static_cast<int>(free[c])));
    }
  }
  return Status::Ok();
}

Status Rack::AdmitAt(const std::string& name, int machine_index,
                     const WorkloadDescription& description,
                     const Placement& placement) {
  if (name.empty()) {
    return Status::InvalidArgument("job name must be non-empty");
  }
  if (machine_index < 0 || static_cast<size_t>(machine_index) >= machines_.size()) {
    return Status::InvalidArgument(
        StrFormat("machine index %d out of range [0, %zu)", machine_index,
                  machines_.size()));
  }
  if (Has(name)) {
    return Status::FailedPrecondition(
        StrFormat("a job named '%s' is already resident", name.c_str()));
  }
  PANDIA_RETURN_IF_ERROR(description.Validate());
  PANDIA_RETURN_IF_ERROR(
      ValidatePlacementFits(machine_index, placement, FreeThreads(machine_index)));
  RackJob resident{name, description, placement, WorkloadFingerprint(description)};
  resident.admit_seq = ++mutation_seq_;
  resident.machine_events_at_placement = ++machine_events_[machine_index];
  residents_[machine_index].push_back(std::move(resident));
  // Replay runs the same joint solve Admit scored the chosen candidate
  // with (residents in order, this job last), so the admit-time baseline
  // survives a restart byte-for-byte.
  const std::vector<Prediction> joint = PredictMachine(machine_index);
  residents_[machine_index].back().speedup_at_admit =
      joint.empty() ? 0.0 : joint.back().speedup;
  AdmissionsCounter().Increment();
  return Status::Ok();
}

StatusOr<int> Rack::Depart(const std::string& job) {
  StatusOr<int> found = MachineOf(job);
  if (!found.ok()) {
    return found.status();
  }
  const int machine_index = *found;
  auto& residents = residents_[machine_index];
  std::erase_if(residents, [&](const RackJob& r) { return r.name == job; });
  ++mutation_seq_;
  ++machine_events_[machine_index];
  DeparturesCounter().Increment();
  // Hard invalidation: joint fingerprints already exclude the departed job
  // from future contexts, but bumping the generation also drops any entry
  // other callers keyed more loosely against the old co-location.
  if (cache_ != nullptr) {
    cache_->BumpGeneration();
  }
  return machine_index;
}

Status Rack::Move(const std::string& job, int machine_index,
                  const Placement& placement) {
  StatusOr<int> found = MachineOf(job);
  if (!found.ok()) {
    return found.status();
  }
  const int from = *found;
  if (machine_index < 0 || static_cast<size_t>(machine_index) >= machines_.size()) {
    return Status::InvalidArgument(
        StrFormat("machine index %d out of range [0, %zu)", machine_index,
                  machines_.size()));
  }
  // Validate against free threads with the job itself excluded, so a move
  // within one machine can reuse its own slots.
  const std::string* exclude = from == machine_index ? &job : nullptr;
  PANDIA_RETURN_IF_ERROR(ValidatePlacementFits(
      machine_index, placement, FreeThreads(machine_index, exclude)));

  auto& source = residents_[from];
  const auto it = std::find_if(source.begin(), source.end(),
                               [&](const RackJob& r) { return r.name == job; });
  RackJob moved = std::move(*it);
  source.erase(it);
  moved.placement = placement;
  ++mutation_seq_;
  ++machine_events_[from];
  if (machine_index != from) {
    ++machine_events_[machine_index];
  }
  ++moved.moves;
  // Re-baseline the co-runner delta: the job starts observing its new
  // machine from this moment.
  moved.machine_events_at_placement = machine_events_[machine_index];
  residents_[machine_index].push_back(std::move(moved));
  MovesCounter().Increment();
  return Status::Ok();
}

Rack::TelemetrySnapshot Rack::Telemetry() const {
  TelemetrySnapshot snapshot;
  snapshot.mutation_seq = mutation_seq_;
  for (size_t m = 0; m < residents_.size(); ++m) {
    if (residents_[m].empty()) {
      continue;
    }
    const std::vector<Prediction> joint = PredictMachine(static_cast<int>(m));
    for (size_t i = 0; i < residents_[m].size(); ++i) {
      const RackJob& resident = residents_[m][i];
      JobTelemetry job;
      job.name = resident.name;
      job.machine_index = static_cast<int>(m);
      job.machine = machines_[m].name;
      job.threads = resident.placement.TotalThreads();
      job.speedup_at_admit = resident.speedup_at_admit;
      job.slowdown_at_admit = resident.speedup_at_admit > 0.0
                                  ? 1.0 / resident.speedup_at_admit
                                  : 0.0;
      job.current_speedup = i < joint.size() ? joint[i].speedup : 0.0;
      job.admit_seq = resident.admit_seq;
      job.moves = resident.moves;
      job.co_events = machine_events_[m] - resident.machine_events_at_placement;
      snapshot.jobs.push_back(std::move(job));
    }
  }
  return snapshot;
}

void Rack::Reset() {
  for (auto& residents : residents_) {
    residents.clear();
  }
  mutation_seq_ = 0;
  std::fill(machine_events_.begin(), machine_events_.end(), 0);
}

Rack::SavedState Rack::SaveState() const {
  SavedState state;
  state.mutation_seq = mutation_seq_;
  state.machine_events = machine_events_;
  for (size_t m = 0; m < residents_.size(); ++m) {
    for (const RackJob& resident : residents_[m]) {
      state.jobs.push_back(SavedJob{static_cast<int>(m), resident});
    }
  }
  return state;
}

Status Rack::RestoreState(const SavedState& state) {
  if (state.machine_events.size() != machines_.size()) {
    return Status::InvalidArgument(
        StrFormat("saved state has %zu machine-event counters for %zu machines",
                  state.machine_events.size(), machines_.size()));
  }
  // Validate everything into a staging copy first: a bad snapshot must not
  // leave the rack half-restored.
  std::vector<std::vector<RackJob>> staged(machines_.size());
  std::vector<std::vector<uint8_t>> free(machines_.size());
  for (size_t m = 0; m < machines_.size(); ++m) {
    const MachineTopology& topo = machines_[m].description.topo;
    free[m].assign(static_cast<size_t>(topo.NumCores()),
                   static_cast<uint8_t>(topo.threads_per_core));
  }
  for (const SavedJob& saved : state.jobs) {
    if (saved.machine_index < 0 ||
        static_cast<size_t>(saved.machine_index) >= machines_.size()) {
      return Status::InvalidArgument(
          StrFormat("saved job '%s' names machine %d of %zu",
                    saved.job.name.c_str(), saved.machine_index,
                    machines_.size()));
    }
    if (saved.job.name.empty()) {
      return Status::InvalidArgument("saved job has an empty name");
    }
    for (const auto& residents : staged) {
      for (const RackJob& other : residents) {
        if (other.name == saved.job.name) {
          return Status::InvalidArgument(StrFormat(
              "saved state names job '%s' twice", saved.job.name.c_str()));
        }
      }
    }
    PANDIA_RETURN_IF_ERROR(saved.job.description.Validate());
    const size_t m = static_cast<size_t>(saved.machine_index);
    PANDIA_RETURN_IF_ERROR(
        ValidatePlacementFits(saved.machine_index, saved.job.placement, free[m]));
    const std::vector<uint8_t>& per_core = saved.job.placement.PerCore();
    for (size_t c = 0; c < per_core.size(); ++c) {
      free[m][c] = static_cast<uint8_t>(free[m][c] - per_core[c]);
    }
    RackJob job = saved.job;
    job.workload_fingerprint = WorkloadFingerprint(job.description);
    staged[m].push_back(std::move(job));
  }
  residents_ = std::move(staged);
  mutation_seq_ = state.mutation_seq;
  machine_events_ = state.machine_events;
  // The whole resident set may have changed shape; drop loosely-keyed cache
  // entries the same way Depart does.
  if (cache_ != nullptr) {
    cache_->BumpGeneration();
  }
  return Status::Ok();
}

RackScheduler::RackScheduler(std::vector<RackMachine> machines,
                             PredictionOptions options)
    : rack_(std::move(machines), options) {}

std::vector<Assignment> RackScheduler::Schedule(std::span<const JobRequest> jobs,
                                                Policy policy) {
  std::vector<Assignment> assignments;
  assignments.reserve(jobs.size());
  for (const JobRequest& job : jobs) {
    // Batch streams may repeat names (several instances of one workload);
    // resident names must be unique, so uniquify internally.
    JobRequest request = job;
    int suffix = 2;
    while (rack_.Has(request.name)) {
      request.name = StrFormat("%s#%d", job.name.c_str(), suffix++);
    }
    StatusOr<Assignment> admitted = rack_.Admit(request, policy);
    Assignment assignment;
    assignment.job = job.name;
    if (admitted.ok()) {
      assignment.machine_index = admitted->machine_index;
      assignment.placement = admitted->placement;
      assignment.predicted_speedup = admitted->predicted_speedup;
    }
    assignments.push_back(std::move(assignment));
  }
  return assignments;
}

}  // namespace rack
}  // namespace pandia
