#include "src/rack/rack.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "src/util/check.h"

namespace pandia {
namespace rack {
namespace {

// Per-core thread counts for `t` threads on one socket of a partially
// occupied machine. Spread variant: empty cores first (no co-location),
// then SMT slots next to residents, then own SMT pairs. Packed variant:
// fill each empty core completely before touching the next.
bool BuildSocketVariant(const MachineTopology& topo, int socket, int t, bool spread,
                        const std::vector<uint8_t>& free, std::vector<uint8_t>& out) {
  const int first = topo.FirstCoreOfSocket(socket);
  std::vector<int> empty;  // free == 2
  std::vector<int> half;   // free == 1
  for (int i = 0; i < topo.cores_per_socket; ++i) {
    const int core = first + i;
    if (free[core] >= 2) {
      empty.push_back(core);
    } else if (free[core] == 1) {
      half.push_back(core);
    }
  }
  int remaining = t;
  if (spread) {
    for (int core : empty) {
      if (remaining == 0) {
        break;
      }
      out[core] += 1;
      --remaining;
    }
    for (int core : half) {
      if (remaining == 0) {
        break;
      }
      out[core] += 1;
      --remaining;
    }
    for (int core : empty) {  // second pass: own SMT pairs
      if (remaining == 0) {
        break;
      }
      out[core] += 1;
      --remaining;
    }
  } else {
    for (int core : empty) {
      while (remaining > 0 && out[core] < free[core]) {
        out[core] += 1;
        --remaining;
      }
    }
    for (int core : half) {
      if (remaining == 0) {
        break;
      }
      out[core] += 1;
      --remaining;
    }
  }
  return remaining == 0;
}

int FreeOnSocket(const MachineTopology& topo, int socket,
                 const std::vector<uint8_t>& free) {
  int total = 0;
  for (int i = 0; i < topo.cores_per_socket; ++i) {
    total += free[topo.FirstCoreOfSocket(socket) + i];
  }
  return total;
}

}  // namespace

std::string PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kFirstFit:
      return "first-fit";
    case Policy::kBestSpeedup:
      return "best-speedup";
    case Policy::kLeastInterference:
      return "least-interference";
  }
  return "unknown";
}

std::optional<Placement> PlaceLoadsOnFreeCores(const MachineTopology& topo,
                                               std::span<const SocketLoad> loads,
                                               const std::vector<uint8_t>& free) {
  PANDIA_CHECK(static_cast<int>(loads.size()) == topo.num_sockets);
  PANDIA_CHECK(static_cast<int>(free.size()) == topo.NumCores());
  std::vector<uint8_t> per_core(static_cast<size_t>(topo.NumCores()), 0);
  for (int s = 0; s < topo.num_sockets; ++s) {
    int doubles = loads[s].doubles;
    int singles = loads[s].singles;
    const int first = topo.FirstCoreOfSocket(s);
    // Doubles need fully free cores.
    for (int i = 0; i < topo.cores_per_socket && doubles > 0; ++i) {
      const int core = first + i;
      if (free[core] >= 2 && per_core[core] == 0) {
        per_core[core] = 2;
        --doubles;
      }
    }
    if (doubles > 0) {
      return std::nullopt;
    }
    // Singles prefer half-occupied cores, then untouched free cores.
    for (int pass = 0; pass < 2 && singles > 0; ++pass) {
      for (int i = 0; i < topo.cores_per_socket && singles > 0; ++i) {
        const int core = first + i;
        if (per_core[core] != 0) {
          continue;
        }
        const bool half = free[core] == 1;
        if ((pass == 0 && half) || (pass == 1 && free[core] >= 1)) {
          per_core[core] = 1;
          --singles;
        }
      }
    }
    if (singles > 0) {
      return std::nullopt;
    }
  }
  int total = std::accumulate(per_core.begin(), per_core.end(), 0);
  if (total == 0) {
    return std::nullopt;
  }
  return Placement(topo, std::move(per_core));
}

RackScheduler::RackScheduler(std::vector<RackMachine> machines,
                             PredictionOptions options)
    : machines_(std::move(machines)), options_(options) {
  PANDIA_CHECK(!machines_.empty());
  residents_.resize(machines_.size());
}

const std::vector<RackScheduler::Resident>& RackScheduler::ResidentsOf(
    int machine_index) const {
  PANDIA_CHECK(machine_index >= 0 &&
               static_cast<size_t>(machine_index) < residents_.size());
  return residents_[machine_index];
}

void RackScheduler::Reset() {
  for (auto& residents : residents_) {
    residents.clear();
  }
}

std::vector<uint8_t> RackScheduler::FreeThreads(int machine_index) const {
  const MachineTopology& topo = machines_[machine_index].description.topo;
  std::vector<uint8_t> free(static_cast<size_t>(topo.NumCores()),
                            static_cast<uint8_t>(topo.threads_per_core));
  for (const Resident& resident : residents_[machine_index]) {
    for (int c = 0; c < topo.NumCores(); ++c) {
      const int used = resident.placement.ThreadsOnCore(c);
      PANDIA_CHECK(free[c] >= used);
      free[c] = static_cast<uint8_t>(free[c] - used);
    }
  }
  return free;
}

std::optional<RackScheduler::Candidate> RackScheduler::BestCandidateOn(
    int machine_index, const JobRequest& job, Policy policy) const {
  const RackMachine& machine = machines_[machine_index];
  const MachineTopology& topo = machine.description.topo;
  const auto desc_it = job.descriptions.find(topo.name);
  if (desc_it == job.descriptions.end()) {
    return std::nullopt;  // no description for this machine type
  }
  const WorkloadDescription& workload = desc_it->second;
  const std::vector<uint8_t> free = FreeThreads(machine_index);

  // Candidate generation (heuristic, bounded): for every feasible thread
  // count up to the request, split the threads over the k most-free sockets
  // (k = 1..num_sockets) as evenly as possible, in a spread and a packed
  // per-core variant.
  std::vector<int> socket_order(static_cast<size_t>(topo.num_sockets));
  std::iota(socket_order.begin(), socket_order.end(), 0);
  std::stable_sort(socket_order.begin(), socket_order.end(), [&](int a, int b) {
    return FreeOnSocket(topo, a, free) > FreeOnSocket(topo, b, free);
  });
  int capacity = 0;
  for (uint8_t f : free) {
    capacity += f;
  }
  const int want = std::min(job.requested_threads, capacity);
  if (want <= 0) {
    return std::nullopt;
  }

  // Aggregate speedup of the machine's residents before the new job, so
  // the interference objective scores the *change* caused by admitting it
  // (a plain after-sum would reward already-busy machines).
  double before_total = 0.0;
  if (!residents_[machine_index].empty()) {
    std::vector<CoScheduleRequest> requests;
    requests.reserve(residents_[machine_index].size());
    for (const Resident& resident : residents_[machine_index]) {
      requests.push_back(CoScheduleRequest{&resident.description, resident.placement});
    }
    const CoSchedulePredictor engine(machine.description, options_);
    for (const Prediction& prediction : engine.Predict(requests).jobs) {
      before_total += prediction.speedup;
    }
  }

  std::set<std::vector<uint8_t>> seen;
  std::optional<Candidate> best;
  for (int total = 1; total <= want; ++total) {
    for (int k = 1; k <= topo.num_sockets; ++k) {
      for (const bool spread : {true, false}) {
        std::vector<uint8_t> per_core(static_cast<size_t>(topo.NumCores()), 0);
        int remaining = total;
        bool ok = true;
        for (int i = 0; i < k && ok; ++i) {
          const int share = remaining / (k - i) + (remaining % (k - i) != 0 ? 1 : 0);
          const int socket = socket_order[i];
          const int here = std::min(share, FreeOnSocket(topo, socket, free));
          ok = BuildSocketVariant(topo, socket, here, spread, free, per_core);
          remaining -= here;
        }
        if (!ok || remaining != 0) {
          continue;
        }
        if (!seen.insert(per_core).second) {
          continue;
        }
        const Placement placement(topo, per_core);

        // Joint prediction with the machine's residents.
        std::vector<CoScheduleRequest> requests;
        requests.reserve(residents_[machine_index].size() + 1);
        for (const Resident& resident : residents_[machine_index]) {
          requests.push_back(
              CoScheduleRequest{&resident.description, resident.placement});
        }
        requests.push_back(CoScheduleRequest{&workload, placement});
        const CoSchedulePredictor engine(machine.description, options_);
        const CoSchedulePrediction joint = engine.Predict(requests);
        Candidate candidate{placement, joint.jobs.back().speedup, 0.0};
        for (const Prediction& prediction : joint.jobs) {
          candidate.total_speedup += prediction.speedup;
        }
        candidate.total_speedup -= before_total;  // net rack-wide gain
        const bool better = [&] {
          if (!best.has_value()) {
            return true;
          }
          if (policy == Policy::kLeastInterference) {
            return candidate.total_speedup > best->total_speedup;
          }
          return candidate.job_speedup > best->job_speedup;
        }();
        if (better) {
          best = std::move(candidate);
        }
      }
    }
  }
  return best;
}

std::vector<Assignment> RackScheduler::Schedule(std::span<const JobRequest> jobs,
                                                Policy policy) {
  std::vector<Assignment> assignments;
  assignments.reserve(jobs.size());
  for (const JobRequest& job : jobs) {
    PANDIA_CHECK(job.requested_threads > 0);
    Assignment assignment;
    assignment.job = job.name;
    std::optional<Candidate> chosen;
    int chosen_machine = -1;
    for (size_t m = 0; m < machines_.size(); ++m) {
      const std::optional<Candidate> candidate =
          BestCandidateOn(static_cast<int>(m), job, policy);
      if (!candidate.has_value()) {
        continue;
      }
      if (policy == Policy::kFirstFit) {
        chosen = candidate;
        chosen_machine = static_cast<int>(m);
        break;
      }
      const bool better = [&] {
        if (!chosen.has_value()) {
          return true;
        }
        if (policy == Policy::kLeastInterference) {
          return candidate->total_speedup > chosen->total_speedup;
        }
        return candidate->job_speedup > chosen->job_speedup;
      }();
      if (better) {
        chosen = candidate;
        chosen_machine = static_cast<int>(m);
      }
    }
    if (chosen.has_value()) {
      assignment.machine_index = chosen_machine;
      assignment.placement = chosen->placement;
      assignment.predicted_speedup = chosen->job_speedup;
      const MachineTopology& topo = machines_[chosen_machine].description.topo;
      residents_[chosen_machine].push_back(
          Resident{job.descriptions.at(topo.name), *assignment.placement});
    }
    assignments.push_back(std::move(assignment));
  }
  return assignments;
}

}  // namespace rack
}  // namespace pandia
