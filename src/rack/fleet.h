// Fleet-scale sharding — the routing layer that turns many racks into one
// logical placement fleet.
//
// A fleet is N shards, each shard an independent rack (its own machines,
// residents, journal, and telemetry — see src/serve/fleet_service.h for the
// serving composition). The Fleet router answers exactly one question:
// given a job name and the shards' current loads, in what order should the
// shards be tried for admission?
//
// Two admission policies:
//
//   * consistent-hash — a fixed virtual-node hash ring (FNV-1a over
//     "shard<k>#<v>" labels). A job's preference order is the clockwise
//     ring walk from the hash of its name, so placement is sticky: the
//     same name always prefers the same shard, and adding a shard moves
//     only ~1/N of the keyspace. Loads are ignored.
//   * least-loaded — shards ordered by most free hardware threads, then
//     fewest resident jobs, then lowest shard index. Follows load, at the
//     cost of name stickiness.
//
// Both orders are pure functions of (name, loads): no randomness, no
// clocks, no iteration over unordered containers. That determinism is a
// hard requirement — the serving layer journals admissions per shard, and
// replaying the same admission sequence must route every job to the same
// shard byte for byte.
#ifndef PANDIA_SRC_RACK_FLEET_H_
#define PANDIA_SRC_RACK_FLEET_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace pandia {
namespace rack {

enum class ShardPolicy {
  kConsistentHash,  // sticky hash-ring routing, load-oblivious
  kLeastLoaded,     // most free threads first, deterministic tie-break
};

std::string ShardPolicyName(ShardPolicy policy);
StatusOr<ShardPolicy> ShardPolicyFromName(const std::string& name);

// One shard's load summary, as the router sees it.
struct ShardLoad {
  int free_threads = 0;  // free hardware threads across the shard's machines
  int jobs = 0;          // resident jobs on the shard
};

// FNV-1a 64-bit — the fleet's stable name hash. Exposed so tests can pin
// ring positions and so the serving layer can hash without a Fleet.
uint64_t FleetHash(std::string_view text);

class Fleet {
 public:
  // `num_shards` must be >= 1. The hash ring is built once here;
  // ShardOrder never allocates ring state.
  Fleet(int num_shards, ShardPolicy policy);

  int num_shards() const { return num_shards_; }
  ShardPolicy policy() const { return policy_; }

  // Full admission preference order for `job_name`: a permutation of
  // [0, num_shards). `loads` must have one entry per shard for
  // kLeastLoaded (it is ignored for kConsistentHash). The first entry is
  // the preferred shard; the serving layer falls through the rest when a
  // shard has no feasible placement.
  std::vector<int> ShardOrder(std::string_view job_name,
                              std::span<const ShardLoad> loads) const;

  // Convenience: ShardOrder's first entry.
  int PreferredShard(std::string_view job_name,
                     std::span<const ShardLoad> loads) const;

 private:
  int num_shards_;
  ShardPolicy policy_;
  // Consistent-hash ring: (position, shard) sorted by position, ties by
  // shard index so the ring order is unambiguous even on a hash collision.
  struct VirtualNode {
    uint64_t position = 0;
    int shard = 0;
  };
  std::vector<VirtualNode> ring_;
};

}  // namespace rack
}  // namespace pandia

#endif  // PANDIA_SRC_RACK_FLEET_H_
