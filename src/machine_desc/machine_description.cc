#include "src/machine_desc/machine_description.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {

std::vector<double> MachineDescription::Capacities(
    const std::vector<uint8_t>& threads_per_core) const {
  const ResourceIndex index(topo);
  std::vector<double> caps(static_cast<size_t>(index.Count()), 0.0);
  CapacitiesInto(threads_per_core, index, caps);
  return caps;
}

void MachineDescription::CapacitiesInto(std::span<const uint8_t> threads_per_core,
                                        const ResourceIndex& index,
                                        std::span<double> caps) const {
  PANDIA_CHECK(static_cast<int>(threads_per_core.size()) == topo.NumCores());
  PANDIA_CHECK(static_cast<int>(caps.size()) == index.Count());
  for (int c = 0; c < topo.NumCores(); ++c) {
    caps[index.Core(c)] = threads_per_core[c] >= 2 ? smt_combined_ops : core_ops;
    caps[index.L1(c)] = l1_bw;
    caps[index.L2(c)] = l2_bw;
    caps[index.L3Port(c)] = l3_port_bw;
  }
  for (int s = 0; s < topo.num_sockets; ++s) {
    caps[index.L3Agg(s)] = l3_agg_bw;
    caps[index.Dram(s)] = dram_bw;
  }
  for (int a = 0; a < topo.num_sockets; ++a) {
    for (int b = a + 1; b < topo.num_sockets; ++b) {
      caps[index.Link(a, b)] = link_bw;
    }
  }
}

Status MachineDescription::Validate() const {
  // Hard cap on topology dimensions: large enough for any machine the paper
  // era or this simulator models, small enough that a corrupt value cannot
  // drive allocation sizes through the roof.
  constexpr int kMaxDim = 1024;
  const auto check_dim = [](const char* field, int value) -> Status {
    if (value <= 0 || value > kMaxDim) {
      return Status::InvalidArgument(
          StrFormat("machine description field '%s' must be in [1, %d], got %d",
                    field, kMaxDim, value));
    }
    return Status::Ok();
  };
  PANDIA_RETURN_IF_ERROR(check_dim("sockets", topo.num_sockets));
  PANDIA_RETURN_IF_ERROR(check_dim("cores_per_socket", topo.cores_per_socket));
  PANDIA_RETURN_IF_ERROR(check_dim("threads_per_core", topo.threads_per_core));
  const auto check_positive = [](const char* field, double value) -> Status {
    if (!std::isfinite(value) || value <= 0.0) {
      return Status::InvalidArgument(StrFormat(
          "machine description field '%s' must be finite and positive, got %g",
          field, value));
    }
    return Status::Ok();
  };
  PANDIA_RETURN_IF_ERROR(check_positive("l1_size", topo.l1_size));
  PANDIA_RETURN_IF_ERROR(check_positive("l2_size", topo.l2_size));
  PANDIA_RETURN_IF_ERROR(check_positive("l3_size", topo.l3_size));
  PANDIA_RETURN_IF_ERROR(check_positive("core_ops", core_ops));
  PANDIA_RETURN_IF_ERROR(check_positive("smt_combined_ops", smt_combined_ops));
  PANDIA_RETURN_IF_ERROR(check_positive("l1_bw", l1_bw));
  PANDIA_RETURN_IF_ERROR(check_positive("l2_bw", l2_bw));
  PANDIA_RETURN_IF_ERROR(check_positive("l3_port_bw", l3_port_bw));
  PANDIA_RETURN_IF_ERROR(check_positive("l3_agg_bw", l3_agg_bw));
  PANDIA_RETURN_IF_ERROR(check_positive("dram_bw", dram_bw));
  if (topo.num_sockets > 1) {
    PANDIA_RETURN_IF_ERROR(check_positive("link_bw", link_bw));
  }
  return Status::Ok();
}

std::string MachineDescription::ToString() const {
  return StrFormat(
      "%s: %d sockets x %d cores x %d threads; core=%.2f smt=%.2f l1=%.1f l2=%.1f "
      "l3port=%.1f l3agg=%.1f dram=%.1f link=%.1f",
      topo.name.c_str(), topo.num_sockets, topo.cores_per_socket,
      topo.threads_per_core, core_ops, smt_combined_ops, l1_bw, l2_bw, l3_port_bw,
      l3_agg_bw, dram_bw, link_bw);
}

}  // namespace pandia
