// Machine description generator (paper §3).
//
// Runs the stress applications on a machine and reads performance counters
// to measure the capacity of every resource class. Idle cores are filled
// with a background load during every measurement so Turbo Boost sits at
// its all-core bin (§6.3). The generator observes the machine only through
// the counter facade — never through sim::MachineSpec.
#ifndef PANDIA_SRC_MACHINE_DESC_GENERATOR_H_
#define PANDIA_SRC_MACHINE_DESC_GENERATOR_H_

#include "src/machine_desc/machine_description.h"
#include "src/sim/machine.h"

namespace pandia {

MachineDescription GenerateMachineDescription(const sim::Machine& machine);

}  // namespace pandia

#endif  // PANDIA_SRC_MACHINE_DESC_GENERATOR_H_
