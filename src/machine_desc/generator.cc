#include "src/machine_desc/generator.h"

#include <vector>

#include "src/counters/counters.h"
#include "src/stress/stress.h"
#include "src/util/check.h"

namespace pandia {
namespace {

// Runs `stressor` under `placement` with idle cores background-filled and
// returns the counter view of the stressor job (index 0). The RunResult is
// returned through `result` to keep the view valid.
CounterView MeasureRun(const sim::Machine& machine, const sim::WorkloadSpec& stressor,
                       const Placement& placement, const sim::WorkloadSpec& filler,
                       sim::RunResult& result) {
  std::vector<sim::JobRequest> jobs;
  jobs.push_back(sim::JobRequest{&stressor, placement, /*background=*/false});
  const std::optional<Placement> filler_placement =
      stress::FillerPlacement(machine.topology(), std::span(&placement, 1));
  if (filler_placement.has_value()) {
    jobs.push_back(sim::JobRequest{&filler, *filler_placement, /*background=*/true});
  }
  result = machine.Run(jobs);
  return CounterView(machine, result, /*job_index=*/0);
}

}  // namespace

MachineDescription GenerateMachineDescription(const sim::Machine& machine) {
  const MachineTopology& topo = machine.topology();
  const ResourceIndex& index = machine.index();
  const sim::WorkloadSpec filler = stress::BackgroundFiller();

  MachineDescription desc;
  desc.topo = topo;

  sim::RunResult result;

  // Peak core instruction rate: one CPU-stressor thread on core 0.
  {
    const sim::WorkloadSpec cpu = stress::CpuStressor();
    const CounterView view =
        MeasureRun(machine, cpu, Placement::OnePerCore(topo, 1), filler, result);
    desc.core_ops = view.Instructions() / view.CompletionTime();
  }

  // SMT co-run loss: two CPU-stressor threads sharing core 0 (§3.2).
  if (topo.threads_per_core >= 2) {
    const sim::WorkloadSpec cpu = stress::CpuStressor();
    const CounterView view =
        MeasureRun(machine, cpu, Placement::TwoPerCore(topo, 2), filler, result);
    desc.smt_combined_ops = view.Instructions() / view.CompletionTime();
  } else {
    desc.smt_combined_ops = desc.core_ops;
  }

  // Private-cache link bandwidths: one streaming thread on core 0.
  {
    const sim::WorkloadSpec l1 = stress::L1Stressor();
    const CounterView view =
        MeasureRun(machine, l1, Placement::OnePerCore(topo, 1), filler, result);
    desc.l1_bw = view.L1Bytes() / view.CompletionTime();
  }
  {
    const sim::WorkloadSpec l2 = stress::L2Stressor();
    const CounterView view =
        MeasureRun(machine, l2, Placement::OnePerCore(topo, 1), filler, result);
    desc.l2_bw = view.L2Bytes() / view.CompletionTime();
  }
  {
    const sim::WorkloadSpec l3 = stress::L3Stressor();
    const CounterView view =
        MeasureRun(machine, l3, Placement::OnePerCore(topo, 1), filler, result);
    desc.l3_port_bw = view.L3Bytes() / view.CompletionTime();
  }

  // Aggregate L3 bandwidth: every core of socket 0 streaming at once. The
  // per-core port limit and the aggregate limit are both part of the
  // description (§3.1's 360-per-core / 5000-aggregate example).
  {
    const sim::WorkloadSpec l3 = stress::L3Stressor();
    const CounterView view = MeasureRun(
        machine, l3, Placement::OnePerCore(topo, topo.cores_per_socket), filler, result);
    const double observed =
        view.ResourceConsumption(index.L3Agg(0)) / view.CompletionTime();
    // The cache cannot deliver more than its ports can request.
    desc.l3_agg_bw = observed;
  }

  // Memory channel bandwidth: every core of socket 0 streaming from local
  // memory (array >= 100x LLC, numactl-bound local).
  {
    const sim::WorkloadSpec dram = stress::DramStressor();
    const CounterView view = MeasureRun(
        machine, dram, Placement::OnePerCore(topo, topo.cores_per_socket), filler,
        result);
    desc.dram_bw = view.ResourceConsumption(index.Dram(0)) / view.CompletionTime();
  }

  // Interconnect link bandwidth: every core of socket 1 streaming from
  // socket 0's memory; all traffic crosses link 0-1. Homogeneous
  // interconnect assumed (§2.2), so one link stands for all.
  if (topo.num_sockets >= 2) {
    const sim::WorkloadSpec remote = stress::RemoteDramStressor(/*home_socket=*/0);
    std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
    loads[1] = SocketLoad{topo.cores_per_socket, 0};
    const Placement placement = Placement::FromSocketLoads(topo, loads);
    const CounterView view = MeasureRun(machine, remote, placement, filler, result);
    desc.link_bw = view.ResourceConsumption(index.Link(0, 1)) / view.CompletionTime();
  } else {
    desc.link_bw = 0.0;
  }

  PANDIA_CHECK(desc.core_ops > 0.0 && desc.l1_bw > 0.0 && desc.dram_bw > 0.0);
  return desc;
}

}  // namespace pandia
