// Machine description (paper §3).
//
// Workload-independent, created once per machine: the topology reported by
// the OS plus the capacity of every resource, measured empirically by
// running stress applications and reading performance counters. All
// bandwidth/rate values are measured at the all-core turbo bin (profiling
// fills idle cores with a background load, §6.3), so they are what a fully
// loaded machine can actually sustain.
#ifndef PANDIA_SRC_MACHINE_DESC_MACHINE_DESCRIPTION_H_
#define PANDIA_SRC_MACHINE_DESC_MACHINE_DESCRIPTION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/topology/resource_index.h"
#include "src/topology/topology.h"
#include "src/util/status.h"

namespace pandia {

struct MachineDescription {
  MachineTopology topo;

  double core_ops = 0.0;          // peak single-thread instruction rate per core
  double smt_combined_ops = 0.0;  // combined peak of two threads sharing a core
  double l1_bw = 0.0;             // per-core L1 link bandwidth
  double l2_bw = 0.0;             // per-core L2 link bandwidth
  double l3_port_bw = 0.0;        // per-core port into the shared L3
  double l3_agg_bw = 0.0;         // per-socket aggregate L3 bandwidth
  double dram_bw = 0.0;           // per-socket memory channel bandwidth
  double link_bw = 0.0;           // per interconnect link

  // Capacity of every resource in ResourceIndex order for a placement with
  // the given per-core thread counts (cores running two threads use the
  // measured SMT-combined rate).
  std::vector<double> Capacities(const std::vector<uint8_t>& threads_per_core) const;

  // Allocation-free variant for the predictor's solver hot path: fills
  // `caps` (size index.Count()) with bit-identical values to Capacities().
  // `index` must be built from this description's topology.
  void CapacitiesInto(std::span<const uint8_t> threads_per_core,
                      const ResourceIndex& index, std::span<double> caps) const;

  // Plausibility check for descriptions arriving from outside the process
  // (stored files, user edits): topology dimensions positive, every
  // capacity and cache size finite and positive. The message names the
  // offending field. A description from GenerateMachineDescription always
  // validates.
  Status Validate() const;

  std::string ToString() const;
};

}  // namespace pandia

#endif  // PANDIA_SRC_MACHINE_DESC_MACHINE_DESCRIPTION_H_
