// Wire schema for the placement service (src/serve) — version 1.
//
// The service speaks a line-delimited text protocol over stdin/stdout and
// over a Unix-domain socket; the same request grammar is reused for the
// mutation journal's record payloads (journal v2 wraps each request line in
// a checksummed `seq crc len payload` frame — see src/serve/journal.h), so
// one grammar covers every byte the daemon reads or writes.
//
// Request (one line):
//
//   request = VERB *( " " key "=" value )
//   VERB    = 1*( "A".."Z" | "-" )
//   key     = 1*( "a".."z" | "0".."9" | "." | "_" | "-" )
//   value   = escaped string (see EscapeValue); may be empty
//
// The grammar is verb-agnostic; the service (src/serve) defines the v1 verb
// set: ADMIT, DEPART, REBALANCE, COMPACT, STATUS, METRICS, TELEMETRY,
// RECORDER, and SHUTDOWN (COMPACT and the HELLO handshake — protocol
// version + capability list — are post-v1 extensions; the protocol version
// only moves on incompatible changes). Unknown verbs parse fine and earn a
// structured err response, which is what lets HELLO-speaking clients
// negotiate with pre-HELLO servers.
//
// Values are escaped so arbitrary text — including the multi-line workload
// description documents carried by ADMIT — fits in one space-separated
// token: backslash-escapes "\\", "\n", "\r", "\t", and "\s" (space).
// Duplicate keys are rejected, matching the strict description parser.
//
// Response (a block of lines):
//
//   response   = status-line *( payload-line ) "."
//   status-line = "ok " VERB            on success
//               | "err " code " " escaped-message
//   code        = "invalid-argument" | "not-found" | "failed-precondition"
//               | "data-loss" | "unavailable" | "internal"
//
// Payload lines are free-form text (typically `key = value` rows) but never
// the single character "."; the lone "." line terminates the block, so
// clients can frame responses without knowing any verb's payload shape.
//
// Parsing is strict and never aborts: malformed requests surface as a
// Status that the service turns into an `err` response — a bad byte on the
// wire must never take the daemon down.
#ifndef PANDIA_SRC_SERIALIZE_WIRE_H_
#define PANDIA_SRC_SERIALIZE_WIRE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/topology/placement.h"
#include "src/util/status.h"

namespace pandia {
namespace wire {

inline constexpr int kProtocolVersion = 1;

// The canonical verb inventory — the single source of truth that the
// whole-program analyzer (pandia_analyze, rule `wire-verb-drift`) checks
// against both dispatchers (serve/service.cc, serve/fleet_service.cc) and
// against the documented protocol in DESIGN.md. Adding a verb means adding
// it here, dispatching it in both services, and documenting it, or the
// analyzer fails CI. Sorted; uppercase per the VERB grammar above.
inline constexpr std::string_view kVerbs[] = {
    "ADMIT",    "COMPACT",  "DEPART",   "HELLO",    "METRICS",
    "RECORDER", "REBALANCE", "SHUTDOWN", "STATUS",   "TELEMETRY",
};

// Journal-record verbs: the request grammar reused for mutation-journal
// payloads (see src/serve/journal.h). Replayed by PlacementService only —
// never dispatched by the fleet, never sent by clients. JOB is the
// sub-record a SNAPSHOT embeds, one per resident job.
inline constexpr std::string_view kJournalRecordVerbs[] = {
    "ADMITTED", "DEPARTED", "JOB", "MOVED", "NOTE", "SNAPSHOT",
};

// Escapes backslash, newline, carriage return, tab, and space so any text
// travels as one token on a request line. Round-trips exactly.
std::string EscapeValue(std::string_view raw);
StatusOr<std::string> UnescapeValue(std::string_view escaped);

struct Request {
  std::string verb;  // uppercase, e.g. "ADMIT"
  // Decoded key/value pairs in wire order (keys are unique).
  std::vector<std::pair<std::string, std::string>> params;

  // Value for `key`, or null when absent.
  const std::string* Find(std::string_view key) const;
};

// Formats a request as one line (no trailing newline). Escapes values;
// PANDIA_CHECKs verb/key charsets (programmer-constructed requests).
std::string FormatRequest(const Request& request);

// Parses one request line. Errors name the offending token.
StatusOr<Request> ParseRequest(std::string_view line);

struct Response {
  bool ok = true;
  std::string verb;                      // echoed verb (ok responses)
  StatusCode code = StatusCode::kOk;     // error code (err responses)
  std::string error;                     // error message (err responses)
  std::vector<std::string> payload;      // lines between status and "."

  static Response Success(std::string verb) {
    Response response;
    response.ok = true;
    response.verb = std::move(verb);
    return response;
  }
  static Response Failure(const Status& status) {
    Response response;
    response.ok = false;
    response.code = status.code();
    response.error = status.message();
    return response;
  }
};

// Lowercase wire token for a status code, e.g. "invalid-argument".
std::string WireCodeName(StatusCode code);
StatusOr<StatusCode> WireCodeFromName(std::string_view name);

// Formats the full response block: status line, payload lines, and the "."
// terminator, each newline-terminated. PANDIA_CHECKs that no payload line
// is the bare terminator (responses are programmer-constructed).
std::string FormatResponse(const Response& response);

// Parses a complete response block (the lines of one response, including
// the final "."). The client side of the protocol.
StatusOr<Response> ParseResponse(const std::vector<std::string>& lines);

// Per-core thread counts as a compact comma list, e.g. "2,1,0,0". The wire
// form of a placement; machine topology comes from context (the request's
// machine index), so the CSV alone is enough to reconstruct it.
std::string PlacementToCsv(const Placement& placement);
StatusOr<Placement> PlacementFromCsv(const MachineTopology& topo,
                                     std::string_view csv);

}  // namespace wire
}  // namespace pandia

#endif  // PANDIA_SRC_SERIALIZE_WIRE_H_
