// Textual serialization of machine and workload descriptions.
//
// A machine description is created once per machine (§3) and a workload
// description once per workload per machine (§4); both are meant to be
// stored and shipped (the portability study of §6.1 moves workload
// descriptions between machines). The format is a line-based `key = value`
// text with '#' comments, stable across versions via a leading magic line.
//
// Parsing is strict and never aborts: malformed input (wrong magic, missing
// or duplicate keys, non-numeric values) and implausible field values
// (NaN/Inf capacities, out-of-range model parameters — enforced via the
// descriptions' Validate() methods) surface as a Status naming the
// offending key.
#ifndef PANDIA_SRC_SERIALIZE_SERIALIZE_H_
#define PANDIA_SRC_SERIALIZE_SERIALIZE_H_

#include <string>

#include "src/machine_desc/machine_description.h"
#include "src/util/status.h"
#include "src/workload_desc/description.h"

namespace pandia {

std::string MachineDescriptionToText(const MachineDescription& desc);
StatusOr<MachineDescription> MachineDescriptionFromText(const std::string& text);

std::string WorkloadDescriptionToText(const WorkloadDescription& desc);
StatusOr<WorkloadDescription> WorkloadDescriptionFromText(const std::string& text);

// Whole-file convenience wrappers; errors carry the path.
Status WriteTextFile(const std::string& path, const std::string& content);
StatusOr<std::string> ReadTextFile(const std::string& path);

}  // namespace pandia

#endif  // PANDIA_SRC_SERIALIZE_SERIALIZE_H_
