// Textual serialization of machine and workload descriptions.
//
// A machine description is created once per machine (§3) and a workload
// description once per workload per machine (§4); both are meant to be
// stored and shipped (the portability study of §6.1 moves workload
// descriptions between machines). The format is a line-based `key = value`
// text with '#' comments, stable across versions via a leading magic line.
#ifndef PANDIA_SRC_SERIALIZE_SERIALIZE_H_
#define PANDIA_SRC_SERIALIZE_SERIALIZE_H_

#include <optional>
#include <string>

#include "src/machine_desc/machine_description.h"
#include "src/workload_desc/description.h"

namespace pandia {

std::string MachineDescriptionToText(const MachineDescription& desc);
std::optional<MachineDescription> MachineDescriptionFromText(const std::string& text,
                                                             std::string* error = nullptr);

std::string WorkloadDescriptionToText(const WorkloadDescription& desc);
std::optional<WorkloadDescription> WorkloadDescriptionFromText(
    const std::string& text, std::string* error = nullptr);

// Whole-file convenience wrappers. Write returns false on I/O failure; Read
// returns nullopt on I/O or parse failure.
bool WriteTextFile(const std::string& path, const std::string& content);
std::optional<std::string> ReadTextFile(const std::string& path);

}  // namespace pandia

#endif  // PANDIA_SRC_SERIALIZE_SERIALIZE_H_
