#include "src/serialize/wire.h"

#include <cctype>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {
namespace wire {
namespace {

bool IsVerbChar(char c) { return (c >= 'A' && c <= 'Z') || c == '-'; }

bool IsKeyChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
         c == '_' || c == '-';
}

bool ValidVerb(std::string_view verb) {
  if (verb.empty()) {
    return false;
  }
  for (char c : verb) {
    if (!IsVerbChar(c)) {
      return false;
    }
  }
  return true;
}

bool ValidKey(std::string_view key) {
  if (key.empty()) {
    return false;
  }
  for (char c : key) {
    if (!IsKeyChar(c)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string EscapeValue(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case ' ':
        out += "\\s";
        break;
      default:
        out += c;
    }
  }
  return out;
}

StatusOr<std::string> UnescapeValue(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i + 1 == escaped.size()) {
      return Status::InvalidArgument("value ends with a dangling backslash");
    }
    const char next = escaped[++i];
    switch (next) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 's':
        out += ' ';
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unknown escape '\\%c' in value", next));
    }
  }
  return out;
}

const std::string* Request::Find(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::string FormatRequest(const Request& request) {
  PANDIA_CHECK_MSG(ValidVerb(request.verb), "request verb must be [A-Z-]+");
  std::string line = request.verb;
  for (const auto& [key, value] : request.params) {
    PANDIA_CHECK_MSG(ValidKey(key), "request key must be [a-z0-9._-]+");
    line += ' ';
    line += key;
    line += '=';
    line += EscapeValue(value);
  }
  return line;
}

StatusOr<Request> ParseRequest(std::string_view line) {
  if (line.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  Request request;
  size_t pos = 0;
  while (pos <= line.size()) {
    const size_t space = line.find(' ', pos);
    const std::string_view token =
        line.substr(pos, space == std::string_view::npos ? space : space - pos);
    pos = space == std::string_view::npos ? line.size() + 1 : space + 1;
    if (token.empty()) {
      return Status::InvalidArgument("empty token (doubled or trailing space?)");
    }
    if (request.verb.empty()) {
      if (!ValidVerb(token)) {
        return Status::InvalidArgument(
            StrFormat("request verb '%.*s' must be uppercase [A-Z-]+",
                      static_cast<int>(token.size()), token.data()));
      }
      request.verb = std::string(token);
      continue;
    }
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("parameter '%.*s' is missing '='",
                    static_cast<int>(token.size()), token.data()));
    }
    const std::string_view key = token.substr(0, eq);
    if (!ValidKey(key)) {
      return Status::InvalidArgument(
          StrFormat("parameter key '%.*s' must be [a-z0-9._-]+",
                    static_cast<int>(key.size()), key.data()));
    }
    if (request.Find(key) != nullptr) {
      return Status::InvalidArgument(
          StrFormat("duplicate parameter key '%.*s'", static_cast<int>(key.size()),
                    key.data()));
    }
    StatusOr<std::string> value = UnescapeValue(token.substr(eq + 1));
    if (!value.ok()) {
      return Status::InvalidArgument(StrFormat("parameter '%.*s': %s",
                                               static_cast<int>(key.size()),
                                               key.data(),
                                               value.status().message().c_str()));
    }
    request.params.emplace_back(std::string(key), *std::move(value));
  }
  return request;
}

std::string WireCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kDataLoss:
      return "data-loss";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
  }
  return "internal";
}

StatusOr<StatusCode> WireCodeFromName(std::string_view name) {
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kDataLoss,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    if (WireCodeName(code) == name) {
      return code;
    }
  }
  return Status::InvalidArgument(StrFormat("unknown wire status code '%.*s'",
                                           static_cast<int>(name.size()),
                                           name.data()));
}

std::string FormatResponse(const Response& response) {
  std::string out;
  if (response.ok) {
    PANDIA_CHECK_MSG(ValidVerb(response.verb), "response verb must be [A-Z-]+");
    out = "ok " + response.verb + "\n";
  } else {
    PANDIA_CHECK_MSG(response.code != StatusCode::kOk,
                     "err response needs a non-OK code");
    out = "err " + WireCodeName(response.code) + " " + EscapeValue(response.error) +
          "\n";
  }
  for (const std::string& line : response.payload) {
    PANDIA_CHECK_MSG(line != ".", "payload line collides with the terminator");
    out += line;
    out += '\n';
  }
  out += ".\n";
  return out;
}

StatusOr<Response> ParseResponse(const std::vector<std::string>& lines) {
  if (lines.size() < 2) {
    return Status::DataLoss("response block needs a status line and a terminator");
  }
  if (lines.back() != ".") {
    return Status::DataLoss("response block does not end with '.'");
  }
  const std::string& status_line = lines.front();
  Response response;
  if (status_line.rfind("ok ", 0) == 0) {
    response.ok = true;
    response.verb = status_line.substr(3);
    if (!ValidVerb(response.verb)) {
      return Status::DataLoss(
          StrFormat("malformed ok status line '%s'", status_line.c_str()));
    }
  } else if (status_line.rfind("err ", 0) == 0) {
    response.ok = false;
    const std::string rest = status_line.substr(4);
    const size_t space = rest.find(' ');
    if (space == std::string::npos) {
      return Status::DataLoss(
          StrFormat("malformed err status line '%s'", status_line.c_str()));
    }
    StatusOr<StatusCode> code = WireCodeFromName(rest.substr(0, space));
    if (!code.ok()) {
      return Status::DataLoss(code.status().message());
    }
    response.code = *code;
    StatusOr<std::string> message = UnescapeValue(rest.substr(space + 1));
    if (!message.ok()) {
      return Status::DataLoss(message.status().message());
    }
    response.error = *std::move(message);
  } else {
    return Status::DataLoss(
        StrFormat("response status line '%s' starts with neither 'ok' nor 'err'",
                  status_line.c_str()));
  }
  response.payload.assign(lines.begin() + 1, lines.end() - 1);
  return response;
}

std::string PlacementToCsv(const Placement& placement) {
  std::string out;
  const std::vector<uint8_t>& per_core = placement.PerCore();
  for (size_t c = 0; c < per_core.size(); ++c) {
    if (c > 0) {
      out += ',';
    }
    out += StrFormat("%d", static_cast<int>(per_core[c]));
  }
  return out;
}

StatusOr<Placement> PlacementFromCsv(const MachineTopology& topo,
                                     std::string_view csv) {
  std::vector<uint8_t> per_core;
  per_core.reserve(static_cast<size_t>(topo.NumCores()));
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string_view token =
        csv.substr(pos, comma == std::string_view::npos ? comma : comma - pos);
    pos = comma == std::string_view::npos ? csv.size() + 1 : comma + 1;
    if (token.empty() || token.size() > 1 || token[0] < '0' || token[0] > '9') {
      return Status::InvalidArgument(
          StrFormat("placement entry '%.*s' is not a digit",
                    static_cast<int>(token.size()), token.data()));
    }
    const int count = token[0] - '0';
    if (count > topo.threads_per_core) {
      return Status::InvalidArgument(
          StrFormat("placement entry %d exceeds threads_per_core=%d", count,
                    topo.threads_per_core));
    }
    per_core.push_back(static_cast<uint8_t>(count));
  }
  if (static_cast<int>(per_core.size()) != topo.NumCores()) {
    return Status::InvalidArgument(
        StrFormat("placement lists %zu cores but machine type '%s' has %d",
                  per_core.size(), topo.name.c_str(), topo.NumCores()));
  }
  int total = 0;
  for (uint8_t count : per_core) {
    total += count;
  }
  if (total == 0) {
    return Status::InvalidArgument("placement has no threads");
  }
  return Placement(topo, std::move(per_core));
}

}  // namespace wire
}  // namespace pandia
