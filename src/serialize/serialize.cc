#include "src/serialize/serialize.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "src/util/strings.h"

namespace pandia {
namespace {

constexpr const char* kMachineMagic = "pandia-machine-description v1";
constexpr const char* kWorkloadMagic = "pandia-workload-description v1";

// Minimal key=value document: first line is the magic, then one `key = value`
// per line; '#' starts a comment; blank lines are ignored. Duplicate keys are
// rejected — a hand-edited file where the same key appears twice almost
// certainly does not mean what its author intended.
class Document {
 public:
  static StatusOr<Document> Parse(const std::string& text, const char* magic) {
    Document doc;
    bool saw_magic = false;
    for (std::string line : StrSplit(text, '\n')) {
      const size_t comment = line.find('#');
      if (comment != std::string::npos) {
        line = line.substr(0, comment);
      }
      // Trim.
      const size_t begin = line.find_first_not_of(" \t\r");
      if (begin == std::string::npos) {
        continue;
      }
      const size_t end = line.find_last_not_of(" \t\r");
      line = line.substr(begin, end - begin + 1);
      if (!saw_magic) {
        if (line != magic) {
          return Status::InvalidArgument(
              StrFormat("expected magic '%s', got '%s'", magic, line.c_str()));
        }
        saw_magic = true;
        continue;
      }
      const size_t eq = line.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(StrFormat("malformed line '%s'", line.c_str()));
      }
      std::string key = line.substr(0, eq);
      std::string value = line.substr(eq + 1);
      const size_t key_end = key.find_last_not_of(" \t");
      key = key_end == std::string::npos ? "" : key.substr(0, key_end + 1);
      const size_t value_begin = value.find_first_not_of(" \t");
      value = value_begin == std::string::npos ? "" : value.substr(value_begin);
      if (key.empty()) {
        return Status::InvalidArgument(StrFormat("empty key in '%s'", line.c_str()));
      }
      if (!doc.values_.emplace(key, value).second) {
        return Status::InvalidArgument(StrFormat("duplicate key '%s'", key.c_str()));
      }
    }
    if (!saw_magic) {
      return Status::DataLoss(
          StrFormat("missing magic line '%s' (empty or truncated input?)", magic));
    }
    return doc;
  }

  StatusOr<std::string> GetString(const char* key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return Status::DataLoss(StrFormat("missing key '%s'", key));
    }
    return it->second;
  }

  StatusOr<double> GetDouble(const char* key) const {
    StatusOr<std::string> raw = GetString(key);
    if (!raw.ok()) {
      return raw.status();
    }
    char* end = nullptr;
    const double value = std::strtod(raw->c_str(), &end);
    if (end == raw->c_str() || *end != '\0') {
      return Status::InvalidArgument(
          StrFormat("key '%s' has non-numeric value '%s'", key, raw->c_str()));
    }
    return value;
  }

  StatusOr<int> GetInt(const char* key) const {
    StatusOr<double> value = GetDouble(key);
    if (!value.ok()) {
      return value.status();
    }
    const int i = static_cast<int>(*value);
    if (static_cast<double>(i) != *value) {
      return Status::InvalidArgument(StrFormat("key '%s' is not an integer", key));
    }
    return i;
  }

 private:
  std::map<std::string, std::string> values_;
};

StatusOr<MemoryPolicy> PolicyFromName(const std::string& name) {
  for (MemoryPolicy policy :
       {MemoryPolicy::kLocal, MemoryPolicy::kInterleaveAll,
        MemoryPolicy::kInterleaveActive, MemoryPolicy::kHomeSocket}) {
    if (MemoryPolicyName(policy) == name) {
      return policy;
    }
  }
  return Status::InvalidArgument(StrFormat("unknown memory policy '%s'", name.c_str()));
}

}  // namespace

std::string MachineDescriptionToText(const MachineDescription& desc) {
  std::string out = StrFormat("%s\n", kMachineMagic);
  out += StrFormat("machine = %s\n", desc.topo.name.c_str());
  out += StrFormat("sockets = %d\n", desc.topo.num_sockets);
  out += StrFormat("cores_per_socket = %d\n", desc.topo.cores_per_socket);
  out += StrFormat("threads_per_core = %d\n", desc.topo.threads_per_core);
  out += StrFormat("l1_size = %.17g\n", desc.topo.l1_size);
  out += StrFormat("l2_size = %.17g\n", desc.topo.l2_size);
  out += StrFormat("l3_size = %.17g\n", desc.topo.l3_size);
  out += "# measured capacities (consistent units; §3)\n";
  out += StrFormat("core_ops = %.17g\n", desc.core_ops);
  out += StrFormat("smt_combined_ops = %.17g\n", desc.smt_combined_ops);
  out += StrFormat("l1_bw = %.17g\n", desc.l1_bw);
  out += StrFormat("l2_bw = %.17g\n", desc.l2_bw);
  out += StrFormat("l3_port_bw = %.17g\n", desc.l3_port_bw);
  out += StrFormat("l3_agg_bw = %.17g\n", desc.l3_agg_bw);
  out += StrFormat("dram_bw = %.17g\n", desc.dram_bw);
  out += StrFormat("link_bw = %.17g\n", desc.link_bw);
  return out;
}

StatusOr<MachineDescription> MachineDescriptionFromText(const std::string& text) {
  StatusOr<Document> doc = Document::Parse(text, kMachineMagic);
  if (!doc.ok()) {
    return doc.status();
  }
  MachineDescription desc;
  const StatusOr<std::string> name = doc->GetString("machine");
  const StatusOr<int> sockets = doc->GetInt("sockets");
  const StatusOr<int> cores = doc->GetInt("cores_per_socket");
  const StatusOr<int> smt = doc->GetInt("threads_per_core");
  const StatusOr<double> l1_size = doc->GetDouble("l1_size");
  const StatusOr<double> l2_size = doc->GetDouble("l2_size");
  const StatusOr<double> l3_size = doc->GetDouble("l3_size");
  const StatusOr<double> core_ops = doc->GetDouble("core_ops");
  const StatusOr<double> smt_ops = doc->GetDouble("smt_combined_ops");
  const StatusOr<double> l1_bw = doc->GetDouble("l1_bw");
  const StatusOr<double> l2_bw = doc->GetDouble("l2_bw");
  const StatusOr<double> l3_port = doc->GetDouble("l3_port_bw");
  const StatusOr<double> l3_agg = doc->GetDouble("l3_agg_bw");
  const StatusOr<double> dram = doc->GetDouble("dram_bw");
  const StatusOr<double> link = doc->GetDouble("link_bw");
  for (const Status* status :
       {&name.status(), &sockets.status(), &cores.status(), &smt.status(),
        &l1_size.status(), &l2_size.status(), &l3_size.status(), &core_ops.status(),
        &smt_ops.status(), &l1_bw.status(), &l2_bw.status(), &l3_port.status(),
        &l3_agg.status(), &dram.status(), &link.status()}) {
    if (!status->ok()) {
      return *status;
    }
  }
  desc.topo = MachineTopology{.name = *name,
                              .num_sockets = *sockets,
                              .cores_per_socket = *cores,
                              .threads_per_core = *smt,
                              .l1_size = *l1_size,
                              .l2_size = *l2_size,
                              .l3_size = *l3_size};
  desc.core_ops = *core_ops;
  desc.smt_combined_ops = *smt_ops;
  desc.l1_bw = *l1_bw;
  desc.l2_bw = *l2_bw;
  desc.l3_port_bw = *l3_port;
  desc.l3_agg_bw = *l3_agg;
  desc.dram_bw = *dram;
  desc.link_bw = *link;
  PANDIA_RETURN_IF_ERROR(desc.Validate());
  return desc;
}

std::string WorkloadDescriptionToText(const WorkloadDescription& desc) {
  std::string out = StrFormat("%s\n", kWorkloadMagic);
  out += StrFormat("workload = %s\n", desc.workload.c_str());
  out += StrFormat("machine = %s\n", desc.machine.c_str());
  out += "# step 1: single-thread time and demand vector d (§4.1)\n";
  out += StrFormat("t1 = %.17g\n", desc.t1);
  out += StrFormat("instr_rate = %.17g\n", desc.demands.instr_rate);
  out += StrFormat("l1_bw = %.17g\n", desc.demands.l1_bw);
  out += StrFormat("l2_bw = %.17g\n", desc.demands.l2_bw);
  out += StrFormat("l3_bw = %.17g\n", desc.demands.l3_bw);
  out += StrFormat("dram_local_bw = %.17g\n", desc.demands.dram_local_bw);
  out += StrFormat("dram_remote_bw = %.17g\n", desc.demands.dram_remote_bw);
  out += "# steps 2-5 (§4.2-§4.5)\n";
  out += StrFormat("parallel_fraction = %.17g\n", desc.parallel_fraction);
  out += StrFormat("inter_socket_overhead = %.17g\n", desc.inter_socket_overhead);
  out += StrFormat("load_balance = %.17g\n", desc.load_balance);
  out += StrFormat("burstiness = %.17g\n", desc.burstiness);
  out += StrFormat("memory_policy = %s\n", MemoryPolicyName(desc.memory_policy).c_str());
  out += "# profiling bookkeeping\n";
  out += StrFormat("profile_threads = %d\n", desc.profile_threads);
  out += StrFormat("r2 = %.17g\n", desc.r2);
  out += StrFormat("r3 = %.17g\n", desc.r3);
  out += StrFormat("r4 = %.17g\n", desc.r4);
  out += StrFormat("r5 = %.17g\n", desc.r5);
  out += StrFormat("r6 = %.17g\n", desc.r6);
  return out;
}

StatusOr<WorkloadDescription> WorkloadDescriptionFromText(const std::string& text) {
  StatusOr<Document> doc = Document::Parse(text, kWorkloadMagic);
  if (!doc.ok()) {
    return doc.status();
  }
  WorkloadDescription desc;
  const StatusOr<std::string> workload = doc->GetString("workload");
  const StatusOr<std::string> machine = doc->GetString("machine");
  const StatusOr<double> t1 = doc->GetDouble("t1");
  const StatusOr<double> instr = doc->GetDouble("instr_rate");
  const StatusOr<double> l1 = doc->GetDouble("l1_bw");
  const StatusOr<double> l2 = doc->GetDouble("l2_bw");
  const StatusOr<double> l3 = doc->GetDouble("l3_bw");
  const StatusOr<double> dram_local = doc->GetDouble("dram_local_bw");
  const StatusOr<double> dram_remote = doc->GetDouble("dram_remote_bw");
  const StatusOr<double> p = doc->GetDouble("parallel_fraction");
  const StatusOr<double> os = doc->GetDouble("inter_socket_overhead");
  const StatusOr<double> l = doc->GetDouble("load_balance");
  const StatusOr<double> b = doc->GetDouble("burstiness");
  const StatusOr<std::string> policy_name = doc->GetString("memory_policy");
  const StatusOr<int> profile_threads = doc->GetInt("profile_threads");
  const StatusOr<double> r2 = doc->GetDouble("r2");
  const StatusOr<double> r3 = doc->GetDouble("r3");
  const StatusOr<double> r4 = doc->GetDouble("r4");
  const StatusOr<double> r5 = doc->GetDouble("r5");
  const StatusOr<double> r6 = doc->GetDouble("r6");
  for (const Status* status :
       {&workload.status(), &machine.status(), &t1.status(), &instr.status(),
        &l1.status(), &l2.status(), &l3.status(), &dram_local.status(),
        &dram_remote.status(), &p.status(), &os.status(), &l.status(), &b.status(),
        &policy_name.status(), &profile_threads.status(), &r2.status(), &r3.status(),
        &r4.status(), &r5.status(), &r6.status()}) {
    if (!status->ok()) {
      return *status;
    }
  }
  StatusOr<MemoryPolicy> policy = PolicyFromName(*policy_name);
  if (!policy.ok()) {
    return policy.status();
  }
  desc.workload = *workload;
  desc.machine = *machine;
  desc.t1 = *t1;
  desc.demands = ResourceDemandVector{*instr, *l1, *l2, *l3, *dram_local, *dram_remote};
  desc.parallel_fraction = *p;
  desc.inter_socket_overhead = *os;
  desc.load_balance = *l;
  desc.burstiness = *b;
  desc.memory_policy = *policy;
  desc.profile_threads = *profile_threads;
  desc.r2 = *r2;
  desc.r3 = *r3;
  desc.r4 = *r4;
  desc.r5 = *r5;
  desc.r6 = *r6;
  PANDIA_RETURN_IF_ERROR(desc.Validate());
  return desc;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound(
        StrFormat("cannot open '%s' for writing: %s", path.c_str(),
                  std::strerror(errno)));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (!closed || written != content.size()) {
    return Status::DataLoss(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::Ok();
}

StatusOr<std::string> ReadTextFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound(StrFormat("cannot open '%s' for reading: %s",
                                      path.c_str(), std::strerror(errno)));
  }
  std::string content;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, got);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) {
    return Status::DataLoss(StrFormat("read error on '%s'", path.c_str()));
  }
  return content;
}

}  // namespace pandia
