#include "src/serialize/serialize.h"

#include <cstdio>
#include <map>

#include "src/util/strings.h"

namespace pandia {
namespace {

constexpr const char* kMachineMagic = "pandia-machine-description v1";
constexpr const char* kWorkloadMagic = "pandia-workload-description v1";

// Minimal key=value document: first line is the magic, then one `key = value`
// per line; '#' starts a comment; blank lines are ignored.
class Document {
 public:
  static std::optional<Document> Parse(const std::string& text, const char* magic,
                                       std::string* error) {
    Document doc;
    bool saw_magic = false;
    for (std::string line : StrSplit(text, '\n')) {
      const size_t comment = line.find('#');
      if (comment != std::string::npos) {
        line = line.substr(0, comment);
      }
      // Trim.
      const size_t begin = line.find_first_not_of(" \t\r");
      if (begin == std::string::npos) {
        continue;
      }
      const size_t end = line.find_last_not_of(" \t\r");
      line = line.substr(begin, end - begin + 1);
      if (!saw_magic) {
        if (line != magic) {
          Fail(error, StrFormat("expected magic '%s', got '%s'", magic, line.c_str()));
          return std::nullopt;
        }
        saw_magic = true;
        continue;
      }
      const size_t eq = line.find('=');
      if (eq == std::string::npos) {
        Fail(error, StrFormat("malformed line '%s'", line.c_str()));
        return std::nullopt;
      }
      std::string key = line.substr(0, eq);
      std::string value = line.substr(eq + 1);
      const size_t key_end = key.find_last_not_of(" \t");
      key = key_end == std::string::npos ? "" : key.substr(0, key_end + 1);
      const size_t value_begin = value.find_first_not_of(" \t");
      value = value_begin == std::string::npos ? "" : value.substr(value_begin);
      if (key.empty()) {
        Fail(error, StrFormat("empty key in '%s'", line.c_str()));
        return std::nullopt;
      }
      doc.values_[key] = value;
    }
    if (!saw_magic) {
      Fail(error, StrFormat("missing magic line '%s'", magic));
      return std::nullopt;
    }
    return doc;
  }

  std::optional<std::string> GetString(const char* key, std::string* error) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      Fail(error, StrFormat("missing key '%s'", key));
      return std::nullopt;
    }
    return it->second;
  }

  std::optional<double> GetDouble(const char* key, std::string* error) const {
    const std::optional<std::string> raw = GetString(key, error);
    if (!raw.has_value()) {
      return std::nullopt;
    }
    char* end = nullptr;
    const double value = std::strtod(raw->c_str(), &end);
    if (end == raw->c_str() || *end != '\0') {
      Fail(error, StrFormat("key '%s' has non-numeric value '%s'", key, raw->c_str()));
      return std::nullopt;
    }
    return value;
  }

  std::optional<int> GetInt(const char* key, std::string* error) const {
    const std::optional<double> value = GetDouble(key, error);
    if (!value.has_value()) {
      return std::nullopt;
    }
    const int i = static_cast<int>(*value);
    if (static_cast<double>(i) != *value) {
      Fail(error, StrFormat("key '%s' is not an integer", key));
      return std::nullopt;
    }
    return i;
  }

 private:
  static void Fail(std::string* error, std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
  }

  std::map<std::string, std::string> values_;
};

std::optional<MemoryPolicy> PolicyFromName(const std::string& name) {
  for (MemoryPolicy policy :
       {MemoryPolicy::kLocal, MemoryPolicy::kInterleaveAll,
        MemoryPolicy::kInterleaveActive, MemoryPolicy::kHomeSocket}) {
    if (MemoryPolicyName(policy) == name) {
      return policy;
    }
  }
  return std::nullopt;
}

}  // namespace

std::string MachineDescriptionToText(const MachineDescription& desc) {
  std::string out = StrFormat("%s\n", kMachineMagic);
  out += StrFormat("machine = %s\n", desc.topo.name.c_str());
  out += StrFormat("sockets = %d\n", desc.topo.num_sockets);
  out += StrFormat("cores_per_socket = %d\n", desc.topo.cores_per_socket);
  out += StrFormat("threads_per_core = %d\n", desc.topo.threads_per_core);
  out += StrFormat("l1_size = %.17g\n", desc.topo.l1_size);
  out += StrFormat("l2_size = %.17g\n", desc.topo.l2_size);
  out += StrFormat("l3_size = %.17g\n", desc.topo.l3_size);
  out += "# measured capacities (consistent units; §3)\n";
  out += StrFormat("core_ops = %.17g\n", desc.core_ops);
  out += StrFormat("smt_combined_ops = %.17g\n", desc.smt_combined_ops);
  out += StrFormat("l1_bw = %.17g\n", desc.l1_bw);
  out += StrFormat("l2_bw = %.17g\n", desc.l2_bw);
  out += StrFormat("l3_port_bw = %.17g\n", desc.l3_port_bw);
  out += StrFormat("l3_agg_bw = %.17g\n", desc.l3_agg_bw);
  out += StrFormat("dram_bw = %.17g\n", desc.dram_bw);
  out += StrFormat("link_bw = %.17g\n", desc.link_bw);
  return out;
}

std::optional<MachineDescription> MachineDescriptionFromText(const std::string& text,
                                                             std::string* error) {
  const std::optional<Document> doc = Document::Parse(text, kMachineMagic, error);
  if (!doc.has_value()) {
    return std::nullopt;
  }
  MachineDescription desc;
  const std::optional<std::string> name = doc->GetString("machine", error);
  const std::optional<int> sockets = doc->GetInt("sockets", error);
  const std::optional<int> cores = doc->GetInt("cores_per_socket", error);
  const std::optional<int> smt = doc->GetInt("threads_per_core", error);
  const std::optional<double> l1_size = doc->GetDouble("l1_size", error);
  const std::optional<double> l2_size = doc->GetDouble("l2_size", error);
  const std::optional<double> l3_size = doc->GetDouble("l3_size", error);
  const std::optional<double> core_ops = doc->GetDouble("core_ops", error);
  const std::optional<double> smt_ops = doc->GetDouble("smt_combined_ops", error);
  const std::optional<double> l1_bw = doc->GetDouble("l1_bw", error);
  const std::optional<double> l2_bw = doc->GetDouble("l2_bw", error);
  const std::optional<double> l3_port = doc->GetDouble("l3_port_bw", error);
  const std::optional<double> l3_agg = doc->GetDouble("l3_agg_bw", error);
  const std::optional<double> dram = doc->GetDouble("dram_bw", error);
  const std::optional<double> link = doc->GetDouble("link_bw", error);
  if (!name || !sockets || !cores || !smt || !l1_size || !l2_size || !l3_size ||
      !core_ops || !smt_ops || !l1_bw || !l2_bw || !l3_port || !l3_agg || !dram ||
      !link) {
    return std::nullopt;
  }
  desc.topo = MachineTopology{.name = *name,
                              .num_sockets = *sockets,
                              .cores_per_socket = *cores,
                              .threads_per_core = *smt,
                              .l1_size = *l1_size,
                              .l2_size = *l2_size,
                              .l3_size = *l3_size};
  if (desc.topo.num_sockets <= 0 || desc.topo.cores_per_socket <= 0 ||
      desc.topo.threads_per_core <= 0) {
    if (error != nullptr) {
      *error = "non-positive topology dimensions";
    }
    return std::nullopt;
  }
  desc.core_ops = *core_ops;
  desc.smt_combined_ops = *smt_ops;
  desc.l1_bw = *l1_bw;
  desc.l2_bw = *l2_bw;
  desc.l3_port_bw = *l3_port;
  desc.l3_agg_bw = *l3_agg;
  desc.dram_bw = *dram;
  desc.link_bw = *link;
  return desc;
}

std::string WorkloadDescriptionToText(const WorkloadDescription& desc) {
  std::string out = StrFormat("%s\n", kWorkloadMagic);
  out += StrFormat("workload = %s\n", desc.workload.c_str());
  out += StrFormat("machine = %s\n", desc.machine.c_str());
  out += "# step 1: single-thread time and demand vector d (§4.1)\n";
  out += StrFormat("t1 = %.17g\n", desc.t1);
  out += StrFormat("instr_rate = %.17g\n", desc.demands.instr_rate);
  out += StrFormat("l1_bw = %.17g\n", desc.demands.l1_bw);
  out += StrFormat("l2_bw = %.17g\n", desc.demands.l2_bw);
  out += StrFormat("l3_bw = %.17g\n", desc.demands.l3_bw);
  out += StrFormat("dram_local_bw = %.17g\n", desc.demands.dram_local_bw);
  out += StrFormat("dram_remote_bw = %.17g\n", desc.demands.dram_remote_bw);
  out += "# steps 2-5 (§4.2-§4.5)\n";
  out += StrFormat("parallel_fraction = %.17g\n", desc.parallel_fraction);
  out += StrFormat("inter_socket_overhead = %.17g\n", desc.inter_socket_overhead);
  out += StrFormat("load_balance = %.17g\n", desc.load_balance);
  out += StrFormat("burstiness = %.17g\n", desc.burstiness);
  out += StrFormat("memory_policy = %s\n", MemoryPolicyName(desc.memory_policy).c_str());
  out += "# profiling bookkeeping\n";
  out += StrFormat("profile_threads = %d\n", desc.profile_threads);
  out += StrFormat("r2 = %.17g\n", desc.r2);
  out += StrFormat("r3 = %.17g\n", desc.r3);
  out += StrFormat("r4 = %.17g\n", desc.r4);
  out += StrFormat("r5 = %.17g\n", desc.r5);
  out += StrFormat("r6 = %.17g\n", desc.r6);
  return out;
}

std::optional<WorkloadDescription> WorkloadDescriptionFromText(const std::string& text,
                                                               std::string* error) {
  const std::optional<Document> doc = Document::Parse(text, kWorkloadMagic, error);
  if (!doc.has_value()) {
    return std::nullopt;
  }
  WorkloadDescription desc;
  const std::optional<std::string> workload = doc->GetString("workload", error);
  const std::optional<std::string> machine = doc->GetString("machine", error);
  const std::optional<double> t1 = doc->GetDouble("t1", error);
  const std::optional<double> instr = doc->GetDouble("instr_rate", error);
  const std::optional<double> l1 = doc->GetDouble("l1_bw", error);
  const std::optional<double> l2 = doc->GetDouble("l2_bw", error);
  const std::optional<double> l3 = doc->GetDouble("l3_bw", error);
  const std::optional<double> dram_local = doc->GetDouble("dram_local_bw", error);
  const std::optional<double> dram_remote = doc->GetDouble("dram_remote_bw", error);
  const std::optional<double> p = doc->GetDouble("parallel_fraction", error);
  const std::optional<double> os = doc->GetDouble("inter_socket_overhead", error);
  const std::optional<double> l = doc->GetDouble("load_balance", error);
  const std::optional<double> b = doc->GetDouble("burstiness", error);
  const std::optional<std::string> policy_name = doc->GetString("memory_policy", error);
  const std::optional<int> profile_threads = doc->GetInt("profile_threads", error);
  const std::optional<double> r2 = doc->GetDouble("r2", error);
  const std::optional<double> r3 = doc->GetDouble("r3", error);
  const std::optional<double> r4 = doc->GetDouble("r4", error);
  const std::optional<double> r5 = doc->GetDouble("r5", error);
  const std::optional<double> r6 = doc->GetDouble("r6", error);
  if (!workload || !machine || !t1 || !instr || !l1 || !l2 || !l3 || !dram_local ||
      !dram_remote || !p || !os || !l || !b || !policy_name || !profile_threads ||
      !r2 || !r3 || !r4 || !r5 || !r6) {
    return std::nullopt;
  }
  const std::optional<MemoryPolicy> policy = PolicyFromName(*policy_name);
  if (!policy.has_value()) {
    if (error != nullptr) {
      *error = StrFormat("unknown memory policy '%s'", policy_name->c_str());
    }
    return std::nullopt;
  }
  desc.workload = *workload;
  desc.machine = *machine;
  desc.t1 = *t1;
  desc.demands = ResourceDemandVector{*instr, *l1, *l2, *l3, *dram_local, *dram_remote};
  desc.parallel_fraction = *p;
  desc.inter_socket_overhead = *os;
  desc.load_balance = *l;
  desc.burstiness = *b;
  desc.memory_policy = *policy;
  desc.profile_threads = *profile_threads;
  desc.r2 = *r2;
  desc.r3 = *r3;
  desc.r4 = *r4;
  desc.r5 = *r5;
  desc.r6 = *r6;
  return desc;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool ok = std::fclose(file) == 0 && written == content.size();
  return ok;
}

std::optional<std::string> ReadTextFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return std::nullopt;
  }
  std::string content;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, got);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) {
    return std::nullopt;
  }
  return content;
}

}  // namespace pandia
