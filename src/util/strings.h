// printf-style std::string formatting (GCC 12 lacks <format>).
#ifndef PANDIA_SRC_UTIL_STRINGS_H_
#define PANDIA_SRC_UTIL_STRINGS_H_

#include <string>
#include <vector>

namespace pandia {

// Returns the printf-formatted string. The format string must be a valid
// printf format for the supplied arguments; mismatches are undefined
// behaviour exactly as with printf.
[[gnu::format(printf, 1, 2)]] std::string StrFormat(const char* fmt, ...);

// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& text, char sep);

}  // namespace pandia

#endif  // PANDIA_SRC_UTIL_STRINGS_H_
