#include "src/util/lock_rank.h"

#include <cstdio>
#include <vector>

#include "src/util/check.h"

namespace pandia {
namespace util {
namespace lock_rank_internal {

namespace {

struct HeldLock {
  const void* mu = nullptr;
  const char* name = nullptr;
  int rank = 0;
};

// The per-thread stack of held ranked mutexes. A plain vector: depth is the
// nesting depth of ranked critical sections, in practice ≤ 3.
thread_local std::vector<HeldLock> t_held;

const char* NameOrUnnamed(const char* name) {
  return name != nullptr ? name : "(unnamed)";
}

}  // namespace

#ifdef NDEBUG
std::atomic<bool> g_checking{false};
#else
std::atomic<bool> g_checking{true};
#endif

void OnLock(const void* mu, const char* name, int rank) {
  for (const HeldLock& held : t_held) {
    if (held.rank >= rank) {
      char msg[256];
      std::snprintf(msg, sizeof(msg),
                    "lock rank inversion: acquiring \"%s\" (rank %d) while "
                    "holding \"%s\" (rank %d); ranks must strictly ascend — "
                    "see the lock-rank table in src/util/mutex.h and run "
                    "pandia_analyze --dot-out to inspect the static order",
                    NameOrUnnamed(name), rank, NameOrUnnamed(held.name),
                    held.rank);
      PANDIA_CHECK_MSG(held.rank < rank, msg);
    }
  }
  t_held.push_back(HeldLock{mu, name, rank});
}

void OnTryLock(const void* mu, const char* name, int rank) {
  t_held.push_back(HeldLock{mu, name, rank});
}

void OnUnlock(const void* mu) {
  for (size_t i = t_held.size(); i > 0; --i) {
    if (t_held[i - 1].mu == mu) {
      t_held.erase(t_held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

size_t HeldCountForTest() { return t_held.size(); }

}  // namespace lock_rank_internal

void SetLockRankChecking(bool enabled) {
  lock_rank_internal::g_checking.store(enabled, std::memory_order_relaxed);
}

}  // namespace util
}  // namespace pandia
