// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding the
// placement service's journal records (src/serve/journal.h). Chosen over
// CRC32 (zlib) for its better error-detection properties on short records;
// this is the same polynomial used by ext4, btrfs, and leveldb.
//
// Software table implementation: journal records are short text lines, so
// a byte-at-a-time table walk is plenty and keeps the code portable.
#ifndef PANDIA_SRC_UTIL_CRC32C_H_
#define PANDIA_SRC_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace pandia {

// CRC32C of `data`. Crc32c("") == 0; the RFC 3720 check value is
// Crc32c("123456789") == 0xE3069283.
uint32_t Crc32c(std::string_view data);

// Incremental form: extends a running checksum with more bytes.
// Crc32c(a + b) == ExtendCrc32c(Crc32c(a), b).
uint32_t ExtendCrc32c(uint32_t crc, std::string_view data);

}  // namespace pandia

#endif  // PANDIA_SRC_UTIL_CRC32C_H_
