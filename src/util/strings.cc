#include "src/util/strings.h"

#include <cstdarg>
#include <cstdio>

#include "src/util/check.h"

namespace pandia {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  PANDIA_CHECK_MSG(needed >= 0, "vsnprintf failed");
  std::string out(static_cast<size_t>(needed), '\0');
  // +1: vsnprintf writes the NUL terminator into the buffer; std::string
  // guarantees data()[size()] is writable as '\0' since C++11.
  std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(const std::string& text, char sep) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace pandia
