// Deterministic fork/join parallelism for the placement-search hot path.
//
// The optimizer and the eval sweeps evaluate thousands of independent
// candidate placements; this header provides the fan-out machinery they
// share. Two rules keep parallel runs byte-identical to serial runs:
//
//   1. work is split into contiguous index chunks up front (no work
//      stealing, no dynamic scheduling), and
//   2. every result is written to a caller-owned slot addressed by the item
//      index, so result order never depends on thread timing.
//
// ThreadPool is a plain fixed-size worker pool: Submit enqueues a task,
// the destructor drains the queue and joins. ParallelFor splits [0, n)
// into at most `jobs` chunks, runs one chunk on the calling thread and the
// rest on the shared pool, and rethrows the first (lowest-index) exception
// a chunk produced. With jobs <= 1, n <= 1, or when called from inside a
// pool worker (nested parallelism), it degrades to a plain serial loop.
//
// Job-count resolution: an explicit `jobs` value wins; 0 defers to the
// PANDIA_JOBS environment variable; unset/invalid PANDIA_JOBS means serial.
// Parallelism is therefore strictly opt-in — existing callers keep their
// exact behaviour.
#ifndef PANDIA_SRC_UTIL_PARALLEL_H_
#define PANDIA_SRC_UTIL_PARALLEL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pandia {
namespace util {

// Hook for pool/queue instrumentation. util sits below src/obs in the
// dependency order, so the metrics bridge (src/obs/parallel_metrics.h)
// installs an observer here instead of util linking the registry directly.
// Callbacks may arrive concurrently from any thread and must be cheap.
struct ParallelObserver {
  virtual ~ParallelObserver() = default;
  // A task was enqueued; `queue_depth` is the queue length just after.
  virtual void OnTaskSubmitted(size_t queue_depth) = 0;
  // A worker finished running a task.
  virtual void OnTaskCompleted() = 0;
  // A ParallelFor call fanned `n` items out over `chunks` chunks
  // (chunks == 1 means it ran serially).
  virtual void OnParallelFor(size_t n, int chunks) = 0;
};

// Installs the process-wide observer (nullptr uninstalls). The pointee must
// outlive every subsequent pool/ParallelFor call.
void SetParallelObserver(ParallelObserver* observer);

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  // Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw (exceptions would escape a worker
  // thread and terminate); ParallelFor wraps user functions so their
  // exceptions are captured and rethrown on the caller instead.
  void Submit(std::function<void()> task) PANDIA_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  // Process-wide pool shared by every ParallelFor call, created on first
  // use and sized to the hardware concurrency. Chunk counts — not the pool
  // size — bound how many workers a given call occupies.
  static ThreadPool& Shared();

 private:
  void WorkerLoop() PANDIA_EXCLUDES(mu_);

  mutable Mutex mu_{"parallel.pool", kLockRankParallelPool};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ PANDIA_GUARDED_BY(mu_);
  bool stop_ PANDIA_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

// Effective job count for a request: `jobs` > 0 is used as-is; `jobs` == 0
// falls back to PANDIA_JOBS (values < 1 or non-numeric mean 1); negative
// values mean 1. The result is clamped to [1, 256].
int ResolveJobs(int jobs);

// Runs fn(i) for every i in [0, n), fanning out across `jobs` (resolved via
// ResolveJobs) contiguous chunks. Results must be written by index into
// caller-owned storage; chunking is static, so a serial and a parallel run
// perform exactly the same fn calls. If any fn throws, the exception from
// the lowest-index chunk is rethrown after all chunks finish.
void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& fn);

}  // namespace util
}  // namespace pandia

#endif  // PANDIA_SRC_UTIL_PARALLEL_H_
