#include "src/util/rng.h"

#include "src/util/check.h"

namespace pandia {

uint64_t Rng::NextBounded(uint64_t bound) {
  PANDIA_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

}  // namespace pandia
