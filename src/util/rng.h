// Deterministic pseudo-random utilities.
//
// All randomness in the repository flows through these helpers so that runs
// are reproducible: the simulator's measurement jitter is a pure function of
// (seed, keys), and sampled placement sweeps are stable across runs.
#ifndef PANDIA_SRC_UTIL_RNG_H_
#define PANDIA_SRC_UTIL_RNG_H_

#include <cstdint>

namespace pandia {

// splitmix64: tiny, high-quality 64-bit mixer (Vigna, public domain idiom).
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Combines a seed with an arbitrary number of keys into one hash.
constexpr uint64_t HashCombine(uint64_t seed) { return SplitMix64(seed); }

template <typename... Rest>
constexpr uint64_t HashCombine(uint64_t seed, uint64_t key, Rest... rest) {
  return HashCombine(SplitMix64(seed ^ (key + 0x9e3779b97f4a7c15ULL)), rest...);
}

// A small deterministic generator (splitmix64 stream).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t x = state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  // Symmetric triangular-ish jitter in [-magnitude, +magnitude] (sum of two
  // uniforms, so small deviations are more likely than extremes).
  double NextJitter(double magnitude) {
    return magnitude * (NextDouble() + NextDouble() - 1.0);
  }

 private:
  uint64_t state_;
};

}  // namespace pandia

#endif  // PANDIA_SRC_UTIL_RNG_H_
