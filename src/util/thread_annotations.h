// Clang Thread Safety Analysis annotations (abseil-style, PANDIA_ prefix).
//
// These macros attach compile-time concurrency contracts to fields, methods,
// and lock types: which mutex guards a field (PANDIA_GUARDED_BY), which lock
// a method needs held on entry (PANDIA_REQUIRES), which locks it must NOT
// hold (PANDIA_EXCLUDES), and which functions acquire/release a capability
// (PANDIA_ACQUIRE / PANDIA_RELEASE). Clang checks the contracts statically
// with -Wthread-safety (the PANDIA_THREAD_SAFETY CMake option turns the
// warnings into errors); every other compiler sees empty macros, so the
// annotations are free documentation off Clang.
//
// The annotated lock vocabulary lives in src/util/mutex.h (pandia::util::
// Mutex / MutexLock / CondVar); library code must use those wrappers rather
// than naked std::mutex so the analysis can see every acquisition (enforced
// by the `naked-mutex` pandia_lint rule).
#ifndef PANDIA_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define PANDIA_SRC_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define PANDIA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PANDIA_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

// Marks a class as a lockable capability ("mutex" names it in diagnostics).
#define PANDIA_CAPABILITY(x) PANDIA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (MutexLock).
#define PANDIA_SCOPED_CAPABILITY \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Field `x` may only be read or written while holding the named mutex.
#define PANDIA_GUARDED_BY(x) PANDIA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Pointer field whose *pointee* is guarded by the named mutex.
#define PANDIA_PT_GUARDED_BY(x) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// The calling thread must hold the named capabilities (exclusively /
// shared) before calling the annotated function.
#define PANDIA_REQUIRES(...) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define PANDIA_REQUIRES_SHARED(...) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// The annotated function acquires / releases the named capabilities.
#define PANDIA_ACQUIRE(...) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define PANDIA_ACQUIRE_SHARED(...) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define PANDIA_RELEASE(...) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define PANDIA_RELEASE_SHARED(...) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

// The annotated function acquires the capability when it returns the given
// boolean value (Mutex::TryLock).
#define PANDIA_TRY_ACQUIRE(...) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// The calling thread must NOT hold the named capabilities (deadlock guard
// for public entry points of self-locking classes).
#define PANDIA_EXCLUDES(...) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Asserts (without acquiring) that the capability is held — for runtime
// checks the analysis cannot see.
#define PANDIA_ASSERT_CAPABILITY(x) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

// The annotated function returns a reference to the named mutex.
#define PANDIA_RETURN_CAPABILITY(x) \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Opts a function out of the analysis entirely. Reserved for code whose
// safety argument the analysis cannot express (move constructors that take
// ownership of a dying object's guarded state, quiescent-only accessors);
// every use must carry a comment saying why it is safe.
#define PANDIA_NO_THREAD_SAFETY_ANALYSIS \
  PANDIA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // PANDIA_SRC_UTIL_THREAD_ANNOTATIONS_H_
