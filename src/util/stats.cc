#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace pandia {
namespace {

std::vector<double> Sorted(std::span<const double> values) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return copy;
}

}  // namespace

double Mean(std::span<const double> values) {
  PANDIA_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double Median(std::span<const double> values) { return Percentile(values, 50.0); }

double Percentile(std::span<const double> values, double q) {
  PANDIA_CHECK(!values.empty());
  PANDIA_CHECK(q >= 0.0 && q <= 100.0);
  const std::vector<double> sorted = Sorted(values);
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double StdDev(std::span<const double> values) {
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    sum_sq += (v - mean) * (v - mean);
  }
  return std::sqrt(sum_sq / static_cast<double>(values.size()));
}

double Min(std::span<const double> values) {
  PANDIA_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  PANDIA_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

Summary Summarize(std::span<const double> values) {
  Summary s;
  s.min = Min(values);
  s.p25 = Percentile(values, 25.0);
  s.median = Median(values);
  s.p75 = Percentile(values, 75.0);
  s.max = Max(values);
  s.mean = Mean(values);
  return s;
}

double GeoMean(std::span<const double> values) {
  PANDIA_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    PANDIA_CHECK_MSG(v > 0.0, "GeoMean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace pandia
