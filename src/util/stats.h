// Small statistics helpers used by the evaluation harness and tests.
#ifndef PANDIA_SRC_UTIL_STATS_H_
#define PANDIA_SRC_UTIL_STATS_H_

#include <span>
#include <vector>

namespace pandia {

// Arithmetic mean. Requires a non-empty input.
double Mean(std::span<const double> values);

// Median via sorting a copy. Requires a non-empty input. For an even count
// the average of the two middle elements is returned.
double Median(std::span<const double> values);

// Linear-interpolation percentile, q in [0, 100]. Requires non-empty input.
double Percentile(std::span<const double> values, double q);

// Population standard deviation. Requires a non-empty input.
double StdDev(std::span<const double> values);

double Min(std::span<const double> values);
double Max(std::span<const double> values);

// Five-number summary plus mean, convenient for printing result tables.
struct Summary {
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

Summary Summarize(std::span<const double> values);

// Geometric mean. Requires non-empty input of positive values.
double GeoMean(std::span<const double> values);

}  // namespace pandia

#endif  // PANDIA_SRC_UTIL_STATS_H_
