// Fixed-width text tables and CSV output for bench binaries.
//
// The bench harness prints the same rows/series the paper reports; Table
// keeps that output aligned and also supports CSV emission so series (e.g.
// Figure 1/10 placement sweeps) can be piped into a plotting tool.
#ifndef PANDIA_SRC_UTIL_TABLE_H_
#define PANDIA_SRC_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace pandia {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; the row must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Renders the table with aligned columns to `out`.
  void Print(std::FILE* out = stdout) const;

  // Renders the table as CSV to `out`.
  void PrintCsv(std::FILE* out = stdout) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pandia

#endif  // PANDIA_SRC_UTIL_TABLE_H_
