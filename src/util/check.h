// Lightweight invariant checking for the Pandia libraries.
//
// PANDIA_CHECK is an always-on assertion: it documents and enforces contract
// violations that indicate programmer error (not recoverable conditions).
// The libraries do not use exceptions; violated checks abort with a message.
#ifndef PANDIA_SRC_UTIL_CHECK_H_
#define PANDIA_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace pandia {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const char* msg) {
  std::fprintf(stderr, "PANDIA_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();  // pandia-lint: allow(no-abort) the one sanctioned abort
}

}  // namespace internal
}  // namespace pandia

#define PANDIA_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::pandia::internal::CheckFailed(__FILE__, __LINE__, #expr, "");      \
    }                                                                      \
  } while (false)

#define PANDIA_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::pandia::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg));   \
    }                                                                      \
  } while (false)

#endif  // PANDIA_SRC_UTIL_CHECK_H_
