#include "src/util/crc32c.h"

#include <array>

namespace pandia {
namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    constexpr uint32_t kPolynomial = 0x82F63B78u;  // reflected 0x1EDC6F41
    std::array<uint32_t, 256> t{};
    for (uint32_t byte = 0; byte < 256; ++byte) {
      uint32_t crc = byte;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
      }
      t[byte] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, std::string_view data) {
  const std::array<uint32_t, 256>& table = Crc32cTable();
  crc = ~crc;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<uint8_t>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(std::string_view data) { return ExtendCrc32c(0, data); }

}  // namespace pandia
