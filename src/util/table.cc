#include "src/util/table.h"

#include <algorithm>

#include "src/util/check.h"

namespace pandia {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PANDIA_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  PANDIA_CHECK_MSG(row.size() == header_.size(), "row arity != header arity");
  rows_.push_back(std::move(row));
}

void Table::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                   c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 != widths.size()) {
      rule.append("  ");
    }
  }
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", row[c].c_str(), c + 1 == row.size() ? "\n" : ",");
    }
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace pandia
