// Annotated synchronization primitives — the only place in the codebase
// allowed to touch std::mutex / std::condition_variable directly (enforced
// by the `naked-mutex` pandia_lint rule).
//
// Mutex is a plain exclusive lock carrying the Clang thread-safety
// `capability` attribute, so `-Wthread-safety` (PANDIA_THREAD_SAFETY=ON)
// can prove statically that every PANDIA_GUARDED_BY field is only touched
// with its lock held. MutexLock is the RAII acquisition; CondVar is a
// condition variable that waits on a Mutex the caller already holds:
//
//   util::Mutex mu_;
//   int pending_ PANDIA_GUARDED_BY(mu_) = 0;
//   util::CondVar cv_;
//
//   void Produce() {
//     util::MutexLock lock(mu_);
//     ++pending_;
//     cv_.NotifyOne();
//   }
//   void Consume() {
//     util::MutexLock lock(mu_);
//     while (pending_ == 0) {   // explicit loop: the analysis can follow it
//       cv_.Wait(mu_);
//     }
//     --pending_;
//   }
//
// CondVar deliberately has no predicate overload: a predicate lambda is a
// separate function to the analysis and reads of guarded state inside it
// would be flagged (or worse, silently unchecked). Spell the wait loop out.
//
// Mutexes optionally carry a name and a rank (the kLockRank* constants
// below): ranked mutexes participate in the runtime lock-rank check
// (src/util/lock_rank.h), which enforces the strictly-ascending acquisition
// order that the static lock-order analysis (pandia_analyze) derives from
// the source. CondVar::Wait releases and re-acquires the native mutex
// directly, so the held-rank stack is untouched across a wait — the lock is
// conceptually held the whole time.
#ifndef PANDIA_SRC_UTIL_MUTEX_H_
#define PANDIA_SRC_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/util/lock_rank.h"
#include "src/util/thread_annotations.h"

namespace pandia {
namespace util {

// Lock ranks — the repo-wide acquisition order, strictly ascending: a thread
// holding a ranked mutex may only acquire mutexes of *greater* rank. The
// values come from the topological order of the static lock-ordering digraph
// (`pandia_analyze`, rule `lock-order`); the runtime checker in
// src/util/lock_rank.h enforces the same order under the concurrency
// regression tests. Gaps are deliberate so a new lock slots in without
// renumbering. When adding a lock: place it in the digraph (what does it
// nest inside? what nests inside it?), pick a value between its neighbors,
// and name the mutex at its declaration:
//
//   util::Mutex mu_{"serve.service", util::kLockRankServeService};
inline constexpr int kLockRankUnranked = -1;
inline constexpr int kLockRankServeFleet = 10;        // fleet admission/route state
inline constexpr int kLockRankServeService = 20;      // per-rack service state
inline constexpr int kLockRankParallelPool = 30;      // ThreadPool queue
inline constexpr int kLockRankParallelDone = 35;      // ParallelFor completion latch
inline constexpr int kLockRankPredictorCacheShard = 40;  // prediction-cache shard
inline constexpr int kLockRankObsMetrics = 50;        // metrics registry
inline constexpr int kLockRankObsTrace = 55;          // tracer registry
inline constexpr int kLockRankObsTraceBuffer = 56;    // per-thread trace buffer
inline constexpr int kLockRankObsLog = 60;            // log sink
inline constexpr int kLockRankObsFlightRecorder = 65;  // flight-recorder ring

class CondVar;

class PANDIA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  // A named, ranked mutex participating in the runtime lock-rank check.
  // `name` must outlive the mutex (string literals only).
  Mutex(const char* name, int rank) : name_(name), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PANDIA_ACQUIRE() {
    if (rank_ != kLockRankUnranked && LockRankCheckingEnabled()) {
      lock_rank_internal::OnLock(this, name_, rank_);
    }
    mu_.lock();
  }
  void Unlock() PANDIA_RELEASE() {
    mu_.unlock();
    if (rank_ != kLockRankUnranked && LockRankCheckingEnabled()) {
      lock_rank_internal::OnUnlock(this);
    }
  }
  bool TryLock() PANDIA_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    if (acquired && rank_ != kLockRankUnranked && LockRankCheckingEnabled()) {
      lock_rank_internal::OnTryLock(this, name_, rank_);
    }
    return acquired;
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = nullptr;
  int rank_ = kLockRankUnranked;
};

// RAII lock: held for the lifetime of the object.
class PANDIA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PANDIA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PANDIA_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable over Mutex. Wait() atomically releases the (held)
// mutex, blocks, and re-acquires it before returning; as with every
// condition variable, wake-ups may be spurious, so callers re-check their
// predicate in a loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) PANDIA_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    // The unique_lock re-acquired mu on wake; hand ownership back to the
    // caller's scope (typically a MutexLock) instead of unlocking here.
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace pandia

#endif  // PANDIA_SRC_UTIL_MUTEX_H_
