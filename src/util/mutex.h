// Annotated synchronization primitives — the only place in the codebase
// allowed to touch std::mutex / std::condition_variable directly (enforced
// by the `naked-mutex` pandia_lint rule).
//
// Mutex is a plain exclusive lock carrying the Clang thread-safety
// `capability` attribute, so `-Wthread-safety` (PANDIA_THREAD_SAFETY=ON)
// can prove statically that every PANDIA_GUARDED_BY field is only touched
// with its lock held. MutexLock is the RAII acquisition; CondVar is a
// condition variable that waits on a Mutex the caller already holds:
//
//   util::Mutex mu_;
//   int pending_ PANDIA_GUARDED_BY(mu_) = 0;
//   util::CondVar cv_;
//
//   void Produce() {
//     util::MutexLock lock(mu_);
//     ++pending_;
//     cv_.NotifyOne();
//   }
//   void Consume() {
//     util::MutexLock lock(mu_);
//     while (pending_ == 0) {   // explicit loop: the analysis can follow it
//       cv_.Wait(mu_);
//     }
//     --pending_;
//   }
//
// CondVar deliberately has no predicate overload: a predicate lambda is a
// separate function to the analysis and reads of guarded state inside it
// would be flagged (or worse, silently unchecked). Spell the wait loop out.
#ifndef PANDIA_SRC_UTIL_MUTEX_H_
#define PANDIA_SRC_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace pandia {
namespace util {

class CondVar;

class PANDIA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PANDIA_ACQUIRE() { mu_.lock(); }
  void Unlock() PANDIA_RELEASE() { mu_.unlock(); }
  bool TryLock() PANDIA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock: held for the lifetime of the object.
class PANDIA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PANDIA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PANDIA_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable over Mutex. Wait() atomically releases the (held)
// mutex, blocks, and re-acquires it before returning; as with every
// condition variable, wake-ups may be spurious, so callers re-check their
// predicate in a loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) PANDIA_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    // The unique_lock re-acquired mu on wake; hand ownership back to the
    // caller's scope (typically a MutexLock) instead of unlocking here.
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace pandia

#endif  // PANDIA_SRC_UTIL_MUTEX_H_
