// Options shared by every layer that predicts placements.
//
// Three knobs recur across the pipeline's options structs (ProfileOptions,
// PredictionOptions, OptimizerOptions, SweepOptions): how many worker
// threads to fan independent work out over, whether to memoize predictions
// in the process-wide PredictionCache, and an optional convergence-trace
// hook. Each struct embeds one CommonOptions member so CLI front-ends can
// parse `--jobs` / `--trace-out` once (tools/tool_common.h) and thread the
// result through a single path instead of five divergent fields.
#ifndef PANDIA_SRC_UTIL_COMMON_OPTIONS_H_
#define PANDIA_SRC_UTIL_COMMON_OPTIONS_H_

namespace pandia {

namespace obs {
struct PredictionTrace;
}  // namespace obs

struct CommonOptions {
  // Worker threads for independent fan-out (candidate predictions, sweep
  // placements, admission probes over rack machines). 0 defers to the
  // PANDIA_JOBS environment variable; unset means serial. Results are
  // byte-identical at every job count (src/util/parallel.h).
  int jobs = 0;

  // Memoize predictions in PredictionCache::Global(). Automatically
  // bypassed when `trace` is set (a cache hit would silently skip
  // recording).
  bool use_cache = true;

  // Optional convergence introspection (src/obs/prediction_trace.h): when
  // non-null, every solve clears the trace and records per-iteration solver
  // state. The pointee must outlive the call; solves sharing one options
  // struct overwrite each other's traces.
  obs::PredictionTrace* trace = nullptr;
};

}  // namespace pandia

#endif  // PANDIA_SRC_UTIL_COMMON_OPTIONS_H_
