// Structured error propagation for recoverable failures.
//
// The Pandia libraries distinguish two failure classes:
//
//   * programmer errors (violated invariants, impossible states) keep using
//     PANDIA_CHECK (src/util/check.h) and abort;
//   * recoverable conditions — malformed description files, implausible
//     measurements, user-supplied flags and placements — surface as a
//     `Status` (or a `StatusOr<T>` when a value is produced) that names the
//     offending field, file, or parameter so CLI front-ends can report it
//     and continue or exit cleanly.
//
// The libraries do not use exceptions; Status is a plain value type.
#ifndef PANDIA_SRC_UTIL_STATUS_H_
#define PANDIA_SRC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace pandia {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // malformed or out-of-range input
  kNotFound,            // missing file, unknown name
  kFailedPrecondition,  // valid input that the current state cannot accept
  kDataLoss,            // truncated/corrupted data
  kUnavailable,         // transient failure (e.g. an injected run crash)
  kInternal,            // everything else recoverable
};

const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Holds either a T or a non-OK Status. Accessing the value of an errored
// StatusOr is a programmer error (PANDIA_CHECK).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit from a value or from a non-OK Status, so functions can
  // `return value;` and `return Status::InvalidArgument(...);` alike.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    PANDIA_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PANDIA_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    PANDIA_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    PANDIA_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pandia

// Early-returns the contained error from the enclosing Status-returning
// function. `expr` is evaluated once.
#define PANDIA_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::pandia::Status pandia_status_tmp_ = (expr);     \
    if (!pandia_status_tmp_.ok()) {                   \
      return pandia_status_tmp_;                      \
    }                                                 \
  } while (false)

#endif  // PANDIA_SRC_UTIL_STATUS_H_
