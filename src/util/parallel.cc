#include "src/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

namespace pandia {
namespace util {
namespace {

std::atomic<ParallelObserver*> g_observer{nullptr};

// Set for the lifetime of a worker thread; lets ParallelFor detect nested
// calls (from any pool) without instantiating the shared pool.
thread_local const ThreadPool* g_worker_pool = nullptr;

ParallelObserver* Observer() {
  return g_observer.load(std::memory_order_acquire);
}

}  // namespace

void SetParallelObserver(ParallelObserver* observer) {
  g_observer.store(observer, std::memory_order_release);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t depth = 0;
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  if (ParallelObserver* observer = Observer()) {
    observer->OnTaskSubmitted(depth);
  }
  cv_.NotifyOne();
}

bool ThreadPool::OnWorkerThread() const { return g_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  g_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Explicit wait loop (not a predicate lambda) so the thread-safety
      // analysis can see the guarded reads happen under mu_.
      while (!stop_ && queue_.empty()) {
        cv_.Wait(mu_);
      }
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    if (ParallelObserver* observer = Observer()) {
      observer->OnTaskCompleted();
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked deliberately: joining workers during static destruction would
  // race with other translation units' teardown.
  static ThreadPool* pool = new ThreadPool(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return *pool;
}

int ResolveJobs(int jobs) {
  if (jobs == 0) {
    const char* env = std::getenv("PANDIA_JOBS");
    jobs = env != nullptr ? std::atoi(env) : 1;
  }
  // Flat cap rather than a hardware-derived one: oversubscription is merely
  // slow, and a hardware-dependent cap would make PANDIA_JOBS behave
  // differently across runners.
  return std::clamp(jobs, 1, 256);
}

void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& fn) {
  const size_t resolved = static_cast<size_t>(ResolveJobs(jobs));
  const size_t chunks = std::min(resolved, n);
  // Nested ParallelFor (fn itself fanning out) runs serially: the outer
  // call already owns the workers, and a worker blocking on sub-chunks
  // could starve the pool.
  if (chunks <= 1 || g_worker_pool != nullptr) {
    if (ParallelObserver* observer = Observer()) {
      observer->OnParallelFor(n, 1);
    }
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  if (ParallelObserver* observer = Observer()) {
    observer->OnParallelFor(n, static_cast<int>(chunks));
  }

  std::vector<std::exception_ptr> errors(chunks);
  auto run_chunk = [&](size_t c) {
    const size_t begin = c * n / chunks;
    const size_t end = (c + 1) * n / chunks;
    try {
      for (size_t i = begin; i < end; ++i) {
        fn(i);
      }
    } catch (...) {
      errors[c] = std::current_exception();
    }
  };

  Mutex done_mu{"parallel.done", kLockRankParallelDone};
  CondVar done_cv;
  size_t outstanding = chunks - 1;  // guarded by done_mu
  ThreadPool& pool = ThreadPool::Shared();
  for (size_t c = 1; c < chunks; ++c) {
    pool.Submit([&, c] {
      run_chunk(c);
      {
        MutexLock lock(done_mu);
        --outstanding;
        // Notify while holding the lock: the waiter can only re-check the
        // predicate (and then destroy these stack-local sync objects) after
        // we release it, so NotifyOne never touches a dead cv.
        done_cv.NotifyOne();
      }
    });
  }
  run_chunk(0);
  {
    MutexLock lock(done_mu);
    while (outstanding != 0) {
      done_cv.Wait(done_mu);
    }
  }
  // Deterministic propagation: the lowest-index chunk's exception wins,
  // independent of which worker finished first.
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

}  // namespace util
}  // namespace pandia
