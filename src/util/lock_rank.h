// Runtime lock-rank validation — the dynamic half of the deadlock defense.
//
// Every long-lived util::Mutex carries a name and a small-integer *rank*
// (see the kLockRank* constants in src/util/mutex.h). The discipline is
// strict ascending acquisition: a thread may only acquire a ranked mutex
// whose rank is greater than every ranked mutex it already holds. Ranks are
// assigned from the topological order of the static lock-ordering digraph
// that `pandia_analyze` extracts from the source (rule `lock-order`), so the
// static graph and this dynamic checker validate each other: a lexical
// nesting the analyzer misses (e.g. through a function call) still trips the
// runtime check under the concurrency regression tests, and an analyzer
// cycle report predicts exactly the inversion this checker would abort on.
//
// Cost model: when checking is off, each Lock()/Unlock() pays one relaxed
// atomic load. When on, a thread-local vector of held (mutex, name, rank)
// entries is maintained; an out-of-order acquisition PANDIA_CHECK-fails
// naming both locks. Checking defaults to on in debug builds (!NDEBUG) and
// off in release; tests force it on with SetLockRankChecking(true) so the
// discipline is exercised in every build type.
//
// Unranked mutexes (the default constructor) are exempt: they are neither
// checked nor recorded. CondVar::Wait leaves the held stack untouched — the
// mutex is conceptually held across the wait, and the internal re-acquisition
// must not re-trip the check.
#ifndef PANDIA_SRC_UTIL_LOCK_RANK_H_
#define PANDIA_SRC_UTIL_LOCK_RANK_H_

#include <atomic>
#include <cstddef>

namespace pandia {
namespace util {

// Turns runtime rank checking on or off process-wide. Thread-safe; takes
// effect for acquisitions that begin after the call returns. Toggling while
// ranked locks are held is safe (unmatched releases are ignored) but may
// miss inversions until the held stacks drain.
void SetLockRankChecking(bool enabled);

namespace lock_rank_internal {

extern std::atomic<bool> g_checking;

// Check-then-record an acquisition of a ranked mutex. PANDIA_CHECK-fails,
// naming both locks, if the calling thread already holds a mutex of equal or
// greater rank.
void OnLock(const void* mu, const char* name, int rank);

// Record an acquisition without the ordering check. TryLock cannot deadlock
// (it never blocks), so a successful try-acquisition is recorded as held but
// exempt from the discipline.
void OnTryLock(const void* mu, const char* name, int rank);

// Remove the most recent held record for `mu`; no-op if there is none
// (e.g. checking was enabled mid-hold).
void OnUnlock(const void* mu);

// Number of ranked mutexes the calling thread currently holds (test hook).
size_t HeldCountForTest();

}  // namespace lock_rank_internal

inline bool LockRankCheckingEnabled() {
  return lock_rank_internal::g_checking.load(std::memory_order_relaxed);
}

}  // namespace util
}  // namespace pandia

#endif  // PANDIA_SRC_UTIL_LOCK_RANK_H_
