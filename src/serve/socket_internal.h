// Shared Unix-domain-socket plumbing for the server event loop (socket.cc)
// and the client transport (client.cc). Internal — not part of the public
// header set; include only from src/serve/*.cc.
#ifndef PANDIA_SRC_SERVE_SOCKET_INTERNAL_H_
#define PANDIA_SRC_SERVE_SOCKET_INTERNAL_H_

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "src/util/status.h"
#include "src/util/strings.h"

namespace pandia {
namespace serve {
namespace sock_internal {

inline Status ErrnoStatus(const char* what, const std::string& detail) {
  return Status::Unavailable(
      StrFormat("%s (%s): %s", what, detail.c_str(), std::strerror(errno)));
}

// Writes all of `data` to the socket `fd`, retrying on short writes and
// EINTR. MSG_NOSIGNAL: a peer that hung up must yield EPIPE, not a SIGPIPE
// that kills the whole process. Assumes a blocking socket (EAGAIN from a
// send timeout surfaces as an error, which is what the deadline wants).
inline Status WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("write to socket failed", StrFormat("fd %d", fd));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Creates a blocking SOCK_STREAM Unix socket and connects it to `addr`.
// Returns the connected fd, or -1 with errno set to the socket() or
// connect() error (any half-made fd is closed first). Callers that retry
// classify the errno themselves; this is the one place outside socket.cc
// allowed to mint socket fds, so the no-raw-poll-io lint rule keeps every
// other call site on the Client/SocketServer abstractions.
inline int ConnectStream(const sockaddr_un& addr) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int connect_errno = errno;
    ::close(fd);
    errno = connect_errno;
    return -1;
  }
  return fd;
}

inline StatusOr<sockaddr_un> SocketAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path '%s' must be 1..%zu bytes", path.c_str(),
                  sizeof(addr.sun_path) - 1));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace sock_internal
}  // namespace serve
}  // namespace pandia

#endif  // PANDIA_SRC_SERVE_SOCKET_INTERNAL_H_
