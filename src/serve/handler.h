// The transport-facing request interface the serving event loop drives.
//
// A RequestHandler maps one wire-v1 request line to one complete response
// block; the event loop (src/serve/socket.h) neither parses nor frames
// anything beyond newline-splitting the byte stream. Two implementations
// exist: PlacementService (one rack — src/serve/service.h) and
// FleetService (N sharded racks — src/serve/fleet_service.h). The daemon
// binary picks one at startup; transports cannot tell them apart.
//
// Contract: HandleLine never aborts, never blocks indefinitely on daemon
// state, and is safe to call concurrently from any number of transport
// threads (implementations serialize internally). The returned text is a
// complete response block: newline-terminated lines ending with ".\n".
#ifndef PANDIA_SRC_SERVE_HANDLER_H_
#define PANDIA_SRC_SERVE_HANDLER_H_

#include <string>

namespace pandia {
namespace serve {

class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  // Processes one request line end to end; returns the response block.
  [[nodiscard]] virtual std::string HandleLine(const std::string& line) = 0;

  // True once a SHUTDOWN request was acknowledged; serving loops exit.
  virtual bool shutdown_requested() const = 0;

 protected:
  RequestHandler() = default;
  RequestHandler(const RequestHandler&) = default;
  RequestHandler& operator=(const RequestHandler&) = default;
};

}  // namespace serve
}  // namespace pandia

#endif  // PANDIA_SRC_SERVE_HANDLER_H_
