#include "src/serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <optional>
#include <utility>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/serialize/serialize.h"
#include "src/topology/resource_index.h"
#include "src/util/strings.h"

namespace pandia {
namespace serve {
namespace {

constexpr const char kJournalMagic[] = "pandia-journal v1";

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-verb request instruments. One static table keyed by verb keeps metric
// cardinality bounded: every verb the service speaks gets its own counters
// and latency histogram, and anything else (unknown verbs, garbage) shares
// the "other" slot.
struct VerbInstruments {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::Histogram* latency_us;
};

const VerbInstruments& InstrumentsFor(const std::string& verb) {
  static const std::map<std::string, VerbInstruments>* table = [] {
    auto* map = new std::map<std::string, VerbInstruments>;
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    for (const auto& [verb_key, stem] :
         std::initializer_list<std::pair<const char*, const char*>>{
             {"ADMIT", "admit"},
             {"DEPART", "depart"},
             {"REBALANCE", "rebalance"},
             {"STATUS", "status"},
             {"METRICS", "metrics"},
             {"TELEMETRY", "telemetry"},
             {"RECORDER", "recorder"},
             {"SHUTDOWN", "shutdown"},
             {"", "other"}}) {
      const std::string prefix = std::string("serve.") + stem;
      map->emplace(verb_key,
                   VerbInstruments{
                       &registry.counter(prefix + ".requests"),
                       &registry.counter(prefix + ".errors"),
                       &registry.histogram(prefix + ".latency_us",
                                           obs::ExponentialBounds(1, 2, 20))});
    }
    return map;
  }();
  const auto it = table->find(verb);
  return it != table->end() ? it->second : table->at("");
}

obs::Histogram& JournalAppendLatency() {
  static obs::Histogram& histogram = obs::MetricsRegistry::Global().histogram(
      "serve.journal.append_latency_us", obs::ExponentialBounds(1, 2, 20));
  return histogram;
}
obs::Counter& JournalBytes() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("serve.journal.bytes");
  return counter;
}
obs::Counter& ParseErrors() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("serve.parse_errors");
  return counter;
}
obs::Gauge& JobsGauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::Global().gauge("serve.jobs");
  return gauge;
}
obs::Gauge& FreeThreadsGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().gauge("serve.free_threads");
  return gauge;
}

StatusOr<int> ParseInt(const std::string& value, const char* what) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || parsed < -1000000000L || parsed > 1000000000L) {
    return Status::InvalidArgument(
        StrFormat("parameter '%s' must be an integer, got '%s'", what,
                  value.c_str()));
  }
  return static_cast<int>(parsed);
}

// The resource the job is predicted to be limited by: the bottleneck of its
// most-slowed thread ("none" for an uncontended or thread-less prediction).
std::string BottleneckName(const MachineTopology& topo,
                           const Prediction& prediction) {
  int bottleneck = -1;
  double worst = -1.0;
  for (const ThreadPrediction& thread : prediction.threads) {
    if (thread.overall_slowdown > worst) {
      worst = thread.overall_slowdown;
      bottleneck = thread.bottleneck;
    }
  }
  if (bottleneck < 0) {
    return "none";
  }
  return ResourceIndex(topo).Name(bottleneck);
}

}  // namespace

StatusOr<PlacementService> PlacementService::Create(
    std::vector<rack::RackMachine> machines, ServiceOptions options) {
  if (machines.empty()) {
    return Status::InvalidArgument("a placement service needs at least one machine");
  }
  PlacementService service(std::move(machines), std::move(options));
  const std::string& path = service.options_.journal_path;
  if (!path.empty()) {
    // The service is not shared yet, but replay and journal reopening touch
    // guarded state, so take the (uncontended) lock for the analysis.
    util::MutexLock lock(service.mu_);
    if (std::FILE* existing = std::fopen(path.c_str(), "rb")) {
      std::fclose(existing);
      StatusOr<std::string> text = ReadTextFile(path);
      if (!text.ok()) {
        return text.status();
      }
      bool saw_magic = false;
      PANDIA_RETURN_IF_ERROR(service.ReplayJournal(*text, &saw_magic));
      service.journal_ = std::fopen(path.c_str(), "ab");
      if (service.journal_ != nullptr && !saw_magic) {
        // A journal with no records at all (0 bytes, e.g. a crash between
        // creating the file and writing its header) is a fresh journal;
        // give it the header so the next restart can replay it.
        std::fprintf(service.journal_, "%s\n", kJournalMagic);
        std::fflush(service.journal_);
      }
    } else {
      service.journal_ = std::fopen(path.c_str(), "wb");
      if (service.journal_ != nullptr) {
        std::fprintf(service.journal_, "%s\n", kJournalMagic);
        std::fflush(service.journal_);
      }
    }
    if (service.journal_ == nullptr) {
      return Status::Unavailable(
          StrFormat("cannot open journal '%s' for appending", path.c_str()));
    }
  }
  return service;
}

PlacementService::PlacementService(std::vector<rack::RackMachine> machines,
                                   ServiceOptions options)
    : options_(std::move(options)),
      rack_(std::move(machines), options_.prediction),
      recorder_(std::make_unique<obs::FlightRecorder>(256)) {}

PlacementService::PlacementService(PlacementService&& other) noexcept
    : options_(std::move(other.options_)),
      rack_(std::move(other.rack_)),
      journal_(std::exchange(other.journal_, nullptr)),
      shutdown_(other.shutdown_),
      recorder_(std::move(other.recorder_)) {}

PlacementService& PlacementService::operator=(PlacementService&& other) noexcept {
  if (this != &other) {
    if (journal_ != nullptr) {
      std::fclose(journal_);
    }
    options_ = std::move(other.options_);
    rack_ = std::move(other.rack_);
    journal_ = std::exchange(other.journal_, nullptr);
    shutdown_ = other.shutdown_;
    recorder_ = std::move(other.recorder_);
  }
  return *this;
}

PlacementService::~PlacementService() {
  if (journal_ != nullptr) {
    std::fclose(journal_);
  }
}

std::string PlacementService::HandleLine(const std::string& line) {
  StatusOr<wire::Request> request = wire::ParseRequest(line);
  if (!request.ok()) {
    ParseErrors().Increment();
    obs::EventLog::Global().Log(
        obs::LogLevel::kWarn, "serve.parse", "unparseable request line",
        {{"error", request.status().message()}});
    recorder_->Record("request", "PARSE", /*ok=*/false);
    return wire::FormatResponse(wire::Response::Failure(request.status()));
  }
  return wire::FormatResponse(Handle(*request));
}

wire::Response PlacementService::Handle(const wire::Request& request) {
  const int64_t start_ns = NowNs();
  wire::Response response;
  {
    util::MutexLock lock(mu_);
    response = Dispatch(request);
    JobsGauge().Set(rack_.JobCount());
    int free = 0;
    for (size_t m = 0; m < rack_.machines().size(); ++m) {
      free += rack_.FreeThreadCount(static_cast<int>(m));
    }
    FreeThreadsGauge().Set(free);
  }
  const double latency_us =
      static_cast<double>(NowNs() - start_ns) / 1000.0;
  const VerbInstruments& instruments = InstrumentsFor(request.verb);
  instruments.requests->Increment();
  instruments.latency_us->Observe(latency_us);
  std::string detail = request.verb;
  if (const std::string* name = request.Find("name")) {
    detail += " name=" + wire::EscapeValue(*name);
  }
  if (!response.ok) {
    instruments.errors->Increment();
    obs::EventLog::Global().Log(
        obs::LogLevel::kWarn, "serve.request", "request failed",
        {{"verb", request.verb},
         {"code", wire::WireCodeName(response.code)},
         {"error", response.error}});
    detail += " " + wire::WireCodeName(response.code);
  }
  recorder_->Record("request", detail, response.ok);
  return response;
}

bool PlacementService::shutdown_requested() const {
  util::MutexLock lock(mu_);
  return shutdown_;
}

wire::Response PlacementService::Dispatch(const wire::Request& request) {
  if (request.verb == "ADMIT") {
    return HandleAdmit(request);
  }
  if (request.verb == "DEPART") {
    return HandleDepart(request);
  }
  if (request.verb == "REBALANCE") {
    return HandleRebalance(request);
  }
  if (request.verb == "STATUS") {
    return HandleStatus();
  }
  if (request.verb == "METRICS") {
    return HandleMetrics(request);
  }
  if (request.verb == "TELEMETRY") {
    if (!request.params.empty()) {
      return wire::Response::Failure(Status::InvalidArgument(
          StrFormat("TELEMETRY does not take parameter '%s'",
                    request.params.front().first.c_str())));
    }
    return HandleTelemetry();
  }
  if (request.verb == "RECORDER") {
    return HandleRecorder(request);
  }
  if (request.verb == "SHUTDOWN") {
    shutdown_ = true;
    return wire::Response::Success("SHUTDOWN");
  }
  return wire::Response::Failure(Status::InvalidArgument(
      StrFormat("unknown verb '%s' (want ADMIT, DEPART, REBALANCE, STATUS, "
                "METRICS, TELEMETRY, RECORDER, or SHUTDOWN)",
                request.verb.c_str())));
}

wire::Response PlacementService::HandleAdmit(const wire::Request& request) {
  rack::JobRequest job;
  rack::Policy policy = options_.default_policy;
  for (const auto& [key, value] : request.params) {
    if (key == "name") {
      job.name = value;
    } else if (key == "threads") {
      StatusOr<int> threads = ParseInt(value, "threads");
      if (!threads.ok()) {
        return wire::Response::Failure(threads.status());
      }
      job.requested_threads = *threads;
    } else if (key == "policy") {
      StatusOr<rack::Policy> parsed = rack::PolicyFromName(value);
      if (!parsed.ok()) {
        return wire::Response::Failure(parsed.status());
      }
      policy = *parsed;
    } else if (key.rfind("desc.", 0) == 0) {
      const std::string type = key.substr(5);
      if (type.empty()) {
        return wire::Response::Failure(
            Status::InvalidArgument("description key 'desc.' names no machine type"));
      }
      StatusOr<WorkloadDescription> description = WorkloadDescriptionFromText(value);
      if (!description.ok()) {
        return wire::Response::Failure(Status::InvalidArgument(
            StrFormat("desc.%s: %s", type.c_str(),
                      description.status().message().c_str())));
      }
      job.descriptions.emplace(type, *std::move(description));
    } else {
      return wire::Response::Failure(Status::InvalidArgument(
          StrFormat("ADMIT does not take parameter '%s'", key.c_str())));
    }
  }
  if (job.descriptions.empty()) {
    return wire::Response::Failure(Status::InvalidArgument(
        "ADMIT needs at least one desc.<machine-type> parameter"));
  }

  StatusOr<rack::Assignment> admitted = rack_.Admit(job, policy);
  if (!admitted.ok()) {
    return wire::Response::Failure(admitted.status());
  }
  const int machine_index = admitted->machine_index;
  const rack::RackMachine& machine = rack_.machines()[machine_index];

  wire::Request record;
  record.verb = "ADMITTED";
  record.params.emplace_back("name", job.name);
  record.params.emplace_back("machine", StrFormat("%d", machine_index));
  record.params.emplace_back("placement", wire::PlacementToCsv(*admitted->placement));
  record.params.emplace_back(
      "desc", WorkloadDescriptionToText(
                  job.descriptions.at(machine.description.topo.name)));
  if (Status journaled = AppendJournal(record); !journaled.ok()) {
    // Unwind the admission: live state must never hold a mutation the
    // journal (and the client, who sees err) does not.
    (void)rack_.Depart(job.name);
    obs::EventLog::Global().Log(obs::LogLevel::kWarn, "serve.rollback",
                                "rolled back admission after journal failure",
                                {{"name", job.name}});
    recorder_->Record("rollback", "ADMIT name=" + wire::EscapeValue(job.name),
                      /*ok=*/false);
    return wire::Response::Failure(journaled);
  }

  wire::Response response = wire::Response::Success("ADMIT");
  response.payload.push_back(StrFormat("machine = %d", machine_index));
  response.payload.push_back(
      StrFormat("machine-name = %s", wire::EscapeValue(machine.name).c_str()));
  response.payload.push_back(StrFormat(
      "placement = %s", wire::PlacementToCsv(*admitted->placement).c_str()));
  response.payload.push_back(
      StrFormat("threads = %d", admitted->placement->TotalThreads()));
  response.payload.push_back(
      StrFormat("speedup = %.6f", admitted->predicted_speedup));
  return response;
}

Status PlacementService::ReplaceDegraded(int machine_index,
                                         std::vector<std::string>& payload) {
  // Snapshot names first: moves re-order the resident vector.
  std::vector<std::string> names;
  for (const rack::RackJob& job : rack_.JobsOn(machine_index)) {
    names.push_back(job.name);
  }
  const std::string type =
      rack_.machines()[machine_index].description.topo.name;
  for (const std::string& name : names) {
    const auto& residents = rack_.JobsOn(machine_index);
    const auto it = std::find_if(residents.begin(), residents.end(),
                                 [&](const rack::RackJob& r) { return r.name == name; });
    if (it == residents.end()) {
      continue;
    }
    const size_t index = static_cast<size_t>(it - residents.begin());
    const std::vector<Prediction> current = rack_.PredictMachine(machine_index);
    const double current_speedup = current[index].speedup;

    rack::JobRequest probe;
    probe.name = name;
    probe.descriptions.emplace(type, it->description);
    probe.requested_threads = it->placement.TotalThreads();
    const std::optional<rack::Rack::Candidate> candidate = rack_.BestCandidateOn(
        machine_index, probe, rack::Policy::kBestSpeedup, &name);
    if (!candidate.has_value() ||
        candidate->job_speedup <= current_speedup * (1.0 + options_.replace_margin)) {
      continue;
    }
    const Placement previous = it->placement;
    PANDIA_RETURN_IF_ERROR(rack_.Move(name, machine_index, candidate->placement));
    wire::Request record;
    record.verb = "MOVED";
    record.params.emplace_back("name", name);
    record.params.emplace_back("machine", StrFormat("%d", machine_index));
    record.params.emplace_back("placement",
                               wire::PlacementToCsv(candidate->placement));
    if (Status journaled = AppendJournal(record); !journaled.ok()) {
      // Unrecorded moves must not survive in live state.
      (void)rack_.Move(name, machine_index, previous);
      obs::EventLog::Global().Log(obs::LogLevel::kWarn, "serve.rollback",
                                  "rolled back re-placement after journal failure",
                                  {{"name", name}});
      recorder_->Record("rollback", "MOVE name=" + wire::EscapeValue(name),
                        /*ok=*/false);
      return journaled;
    }
    payload.push_back(StrFormat("moved = %s machine=%d placement=%s speedup=%.6f",
                                wire::EscapeValue(name).c_str(), machine_index,
                                wire::PlacementToCsv(candidate->placement).c_str(),
                                candidate->job_speedup));
  }
  return Status::Ok();
}

wire::Response PlacementService::HandleDepart(const wire::Request& request) {
  const std::string* name = request.Find("name");
  if (name == nullptr) {
    return wire::Response::Failure(
        Status::InvalidArgument("DEPART needs a name=<job> parameter"));
  }
  for (const auto& [key, value] : request.params) {
    if (key != "name") {
      return wire::Response::Failure(Status::InvalidArgument(
          StrFormat("DEPART does not take parameter '%s'", key.c_str())));
    }
  }
  // Snapshot the resident before removing it so a failed journal append can
  // restore it (re-admitted at the end of the resident order; membership,
  // not order, is what must stay consistent with the journal).
  std::optional<rack::RackJob> snapshot;
  const StatusOr<int> host = rack_.MachineOf(*name);
  if (host.ok()) {
    const auto& residents = rack_.JobsOn(*host);
    const auto it = std::find_if(residents.begin(), residents.end(),
                                 [&](const rack::RackJob& r) { return r.name == *name; });
    if (it != residents.end()) {
      snapshot = *it;
    }
  }
  StatusOr<int> departed = rack_.Depart(*name);
  if (!departed.ok()) {
    return wire::Response::Failure(departed.status());
  }
  wire::Request record;
  record.verb = "DEPARTED";
  record.params.emplace_back("name", *name);
  if (Status journaled = AppendJournal(record); !journaled.ok()) {
    if (snapshot.has_value()) {
      (void)rack_.AdmitAt(snapshot->name, *host, snapshot->description,
                          snapshot->placement);
    }
    obs::EventLog::Global().Log(obs::LogLevel::kWarn, "serve.rollback",
                                "rolled back departure after journal failure",
                                {{"name", *name}});
    recorder_->Record("rollback", "DEPART name=" + wire::EscapeValue(*name),
                      /*ok=*/false);
    return wire::Response::Failure(journaled);
  }

  wire::Response response = wire::Response::Success("DEPART");
  response.payload.push_back(StrFormat("machine = %d", *departed));
  // Freed threads are an opportunity: re-place neighbours the departed job
  // was degrading.
  if (Status replaced = ReplaceDegraded(*departed, response.payload);
      !replaced.ok()) {
    return wire::Response::Failure(replaced);
  }
  return response;
}

wire::Response PlacementService::HandleRebalance(const wire::Request& request) {
  int max_migrations = options_.default_max_migrations;
  for (const auto& [key, value] : request.params) {
    if (key == "max-migrations") {
      StatusOr<int> parsed = ParseInt(value, "max-migrations");
      if (!parsed.ok()) {
        return wire::Response::Failure(parsed.status());
      }
      if (*parsed < 0) {
        return wire::Response::Failure(Status::InvalidArgument(
            "parameter 'max-migrations' must be non-negative"));
      }
      max_migrations = *parsed;
    } else {
      return wire::Response::Failure(Status::InvalidArgument(
          StrFormat("REBALANCE does not take parameter '%s'", key.c_str())));
    }
  }

  wire::Response response = wire::Response::Success("REBALANCE");
  int migrations = 0;
  // Each round re-places the currently worst-predicted job if some machine
  // of its type offers a margin-beating improvement. Stops at the migration
  // budget or at a fixed point (no candidate improves).
  while (migrations < max_migrations) {
    struct Entry {
      std::string name;
      int machine = -1;
      double speedup = 0.0;
    };
    std::vector<Entry> jobs;
    for (size_t m = 0; m < rack_.machines().size(); ++m) {
      const std::vector<Prediction> predictions =
          rack_.PredictMachine(static_cast<int>(m));
      const auto& residents = rack_.JobsOn(static_cast<int>(m));
      for (size_t i = 0; i < residents.size(); ++i) {
        jobs.push_back(
            Entry{residents[i].name, static_cast<int>(m), predictions[i].speedup});
      }
    }
    // Worst predicted speedup first; names break ties deterministically.
    std::sort(jobs.begin(), jobs.end(), [](const Entry& a, const Entry& b) {
      return a.speedup != b.speedup ? a.speedup < b.speedup : a.name < b.name;
    });

    bool moved = false;
    for (const Entry& entry : jobs) {
      const auto& residents = rack_.JobsOn(entry.machine);
      const auto it =
          std::find_if(residents.begin(), residents.end(),
                       [&](const rack::RackJob& r) { return r.name == entry.name; });
      const std::string type =
          rack_.machines()[entry.machine].description.topo.name;
      rack::JobRequest probe;
      probe.name = entry.name;
      probe.descriptions.emplace(type, it->description);
      probe.requested_threads = it->placement.TotalThreads();

      // Candidate machines: same type only (the stored description is
      // machine-specific, §4), own machine included via self-exclusion.
      std::optional<rack::Rack::Candidate> best;
      int best_machine = -1;
      for (size_t m = 0; m < rack_.machines().size(); ++m) {
        if (rack_.machines()[m].description.topo.name != type) {
          continue;
        }
        const std::string* exclude =
            static_cast<int>(m) == entry.machine ? &entry.name : nullptr;
        std::optional<rack::Rack::Candidate> candidate = rack_.BestCandidateOn(
            static_cast<int>(m), probe, rack::Policy::kBestSpeedup, exclude);
        if (!candidate.has_value()) {
          continue;
        }
        if (!best.has_value() || candidate->job_speedup > best->job_speedup) {
          best = std::move(candidate);
          best_machine = static_cast<int>(m);
        }
      }
      if (!best.has_value() ||
          best->job_speedup <= entry.speedup * (1.0 + options_.replace_margin)) {
        continue;
      }
      const Placement previous = it->placement;
      if (Status status = rack_.Move(entry.name, best_machine, best->placement);
          !status.ok()) {
        return wire::Response::Failure(status);
      }
      wire::Request record;
      record.verb = "MOVED";
      record.params.emplace_back("name", entry.name);
      record.params.emplace_back("machine", StrFormat("%d", best_machine));
      record.params.emplace_back("placement", wire::PlacementToCsv(best->placement));
      if (Status journaled = AppendJournal(record); !journaled.ok()) {
        // Unrecorded moves must not survive in live state.
        (void)rack_.Move(entry.name, entry.machine, previous);
        obs::EventLog::Global().Log(
            obs::LogLevel::kWarn, "serve.rollback",
            "rolled back rebalance move after journal failure",
            {{"name", entry.name}});
        recorder_->Record("rollback",
                          "MOVE name=" + wire::EscapeValue(entry.name),
                          /*ok=*/false);
        return wire::Response::Failure(journaled);
      }
      response.payload.push_back(
          StrFormat("moved = %s machine=%d placement=%s speedup=%.6f",
                    wire::EscapeValue(entry.name).c_str(), best_machine,
                    wire::PlacementToCsv(best->placement).c_str(),
                    best->job_speedup));
      ++migrations;
      moved = true;
      break;  // re-rank after every migration
    }
    if (!moved) {
      break;
    }
  }
  response.payload.insert(response.payload.begin(),
                          StrFormat("migrations = %d", migrations));
  return response;
}

wire::Response PlacementService::HandleStatus() const {
  wire::Response response = wire::Response::Success("STATUS");
  response.payload.push_back(StrFormat("version = %d", wire::kProtocolVersion));
  response.payload.push_back(
      StrFormat("policy = %s", rack::PolicyName(options_.default_policy).c_str()));
  response.payload.push_back(
      StrFormat("machines = %zu", rack_.machines().size()));
  response.payload.push_back(StrFormat("jobs = %d", rack_.JobCount()));

  struct JobRow {
    std::string name;
    std::string line;
  };
  std::vector<JobRow> rows;
  for (size_t m = 0; m < rack_.machines().size(); ++m) {
    const rack::RackMachine& machine = rack_.machines()[m];
    const auto& residents = rack_.JobsOn(static_cast<int>(m));
    response.payload.push_back(StrFormat(
        "machine = %zu name=%s type=%s free=%d jobs=%zu", m,
        wire::EscapeValue(machine.name).c_str(),
        wire::EscapeValue(machine.description.topo.name).c_str(),
        rack_.FreeThreadCount(static_cast<int>(m)), residents.size()));
    const std::vector<Prediction> predictions =
        rack_.PredictMachine(static_cast<int>(m));
    for (size_t i = 0; i < residents.size(); ++i) {
      const rack::RackJob& job = residents[i];
      const Prediction& prediction = predictions[i];
      rows.push_back(JobRow{
          job.name,
          StrFormat("job = %s machine=%zu threads=%d speedup=%.6f slowdown=%.6f "
                    "bottleneck=%s placement=%s",
                    wire::EscapeValue(job.name).c_str(), m,
                    job.placement.TotalThreads(), prediction.speedup,
                    prediction.speedup > 0.0 ? 1.0 / prediction.speedup : 0.0,
                    BottleneckName(machine.description.topo, prediction).c_str(),
                    wire::PlacementToCsv(job.placement).c_str())});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const JobRow& a, const JobRow& b) { return a.name < b.name; });
  for (JobRow& row : rows) {
    response.payload.push_back(std::move(row.line));
  }
  return response;
}

wire::Response PlacementService::HandleMetrics(const wire::Request& request) const {
  bool expo = false;
  for (const auto& [key, value] : request.params) {
    if (key != "format") {
      return wire::Response::Failure(Status::InvalidArgument(
          StrFormat("METRICS does not take parameter '%s'", key.c_str())));
    }
    if (value == "expo") {
      expo = true;
    } else if (value != "table") {
      return wire::Response::Failure(Status::InvalidArgument(StrFormat(
          "unknown METRICS format '%s' (want table or expo)", value.c_str())));
    }
  }
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  wire::Response response = wire::Response::Success("METRICS");
  if (expo) {
    // Line-oriented exposition format (grammar in DESIGN.md): one
    // "<metric> <value>" sample per line, histogram buckets as
    // name{le=BOUND} with cumulative counts, plus name.count / name.sum.
    for (const auto& counter : snapshot.counters) {
      response.payload.push_back(
          StrFormat("%s %llu", counter.name.c_str(),
                    static_cast<unsigned long long>(counter.value)));
    }
    for (const auto& gauge : snapshot.gauges) {
      response.payload.push_back(
          StrFormat("%s %.6f", gauge.name.c_str(), gauge.value));
    }
    for (const auto& histogram : snapshot.histograms) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < histogram.buckets.size(); ++i) {
        cumulative += histogram.buckets[i];
        const std::string le =
            i < histogram.bounds.size() ? StrFormat("%.6g", histogram.bounds[i])
                                        : std::string("+inf");
        response.payload.push_back(
            StrFormat("%s{le=%s} %llu", histogram.name.c_str(), le.c_str(),
                      static_cast<unsigned long long>(cumulative)));
      }
      response.payload.push_back(
          StrFormat("%s.count %llu", histogram.name.c_str(),
                    static_cast<unsigned long long>(histogram.count)));
      response.payload.push_back(
          StrFormat("%s.sum %.6f", histogram.name.c_str(), histogram.sum));
    }
    return response;
  }
  for (const auto& counter : snapshot.counters) {
    response.payload.push_back(
        StrFormat("counter %s = %llu", counter.name.c_str(),
                  static_cast<unsigned long long>(counter.value)));
  }
  for (const auto& gauge : snapshot.gauges) {
    response.payload.push_back(
        StrFormat("gauge %s = %.6f", gauge.name.c_str(), gauge.value));
  }
  for (const auto& histogram : snapshot.histograms) {
    response.payload.push_back(StrFormat(
        "histogram %s count=%llu sum=%.6f", histogram.name.c_str(),
        static_cast<unsigned long long>(histogram.count), histogram.sum));
  }
  return response;
}

wire::Response PlacementService::HandleTelemetry() const {
  const rack::Rack::TelemetrySnapshot telemetry = rack_.Telemetry();
  wire::Response response = wire::Response::Success("TELEMETRY");
  response.payload.push_back(StrFormat(
      "mutation-seq = %llu",
      static_cast<unsigned long long>(telemetry.mutation_seq)));
  response.payload.push_back(
      StrFormat("jobs = %zu", telemetry.jobs.size()));
  // Sorted by name, like STATUS: deterministic output for tests and diffs.
  std::vector<const rack::Rack::JobTelemetry*> jobs;
  jobs.reserve(telemetry.jobs.size());
  for (const rack::Rack::JobTelemetry& job : telemetry.jobs) {
    jobs.push_back(&job);
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const rack::Rack::JobTelemetry* a,
               const rack::Rack::JobTelemetry* b) { return a->name < b->name; });
  for (const rack::Rack::JobTelemetry* job : jobs) {
    // Degradation: how much worse the job is predicted to run now than
    // under the co-location it was admitted into (1.0 = unchanged).
    const double degradation = job->current_speedup > 0.0
                                   ? job->speedup_at_admit / job->current_speedup
                                   : 0.0;
    response.payload.push_back(StrFormat(
        "job = %s machine=%d machine-name=%s threads=%d "
        "speedup-at-admit=%.6f slowdown-at-admit=%.6f current-speedup=%.6f "
        "degradation=%.6f admit-seq=%llu moves=%d co-events=%llu",
        wire::EscapeValue(job->name).c_str(), job->machine_index,
        wire::EscapeValue(job->machine).c_str(), job->threads,
        job->speedup_at_admit, job->slowdown_at_admit, job->current_speedup,
        degradation, static_cast<unsigned long long>(job->admit_seq),
        job->moves, static_cast<unsigned long long>(job->co_events)));
  }
  return response;
}

wire::Response PlacementService::HandleRecorder(const wire::Request& request) const {
  if (!request.params.empty()) {
    return wire::Response::Failure(Status::InvalidArgument(
        StrFormat("RECORDER does not take parameter '%s'",
                  request.params.front().first.c_str())));
  }
  const std::vector<obs::FlightEvent> events = recorder_->Dump();
  wire::Response response = wire::Response::Success("RECORDER");
  response.payload.push_back(
      StrFormat("capacity = %zu", recorder_->capacity()));
  response.payload.push_back(StrFormat(
      "recorded = %llu", static_cast<unsigned long long>(recorder_->recorded())));
  response.payload.push_back(StrFormat(
      "dropped = %llu", static_cast<unsigned long long>(recorder_->dropped())));
  const int64_t origin = events.empty() ? 0 : events.front().timestamp_ns;
  for (const obs::FlightEvent& event : events) {
    response.payload.push_back(
        "event = " + obs::FormatFlightEvent(event, origin));
  }
  return response;
}

Status PlacementService::ReplayJournal(const std::string& text, bool* saw_magic_out) {
  size_t pos = 0;
  size_t line_number = 0;
  bool saw_magic = false;
  while (pos <= text.size()) {
    const size_t newline = text.find('\n', pos);
    const std::string line =
        text.substr(pos, newline == std::string::npos ? newline : newline - pos);
    pos = newline == std::string::npos ? text.size() + 1 : newline + 1;
    ++line_number;
    if (line.empty()) {
      continue;
    }
    if (!saw_magic) {
      if (line != kJournalMagic) {
        return Status::DataLoss(StrFormat(
            "journal '%s' does not start with '%s'",
            options_.journal_path.c_str(), kJournalMagic));
      }
      saw_magic = true;
      continue;
    }
    StatusOr<wire::Request> record = wire::ParseRequest(line);
    if (!record.ok()) {
      return Status::DataLoss(StrFormat("journal line %zu: %s", line_number,
                                        record.status().message().c_str()));
    }
    const auto param = [&](const char* key) -> StatusOr<std::string> {
      const std::string* value = record->Find(key);
      if (value == nullptr) {
        return Status::DataLoss(StrFormat("journal line %zu: %s record misses '%s'",
                                          line_number, record->verb.c_str(), key));
      }
      return *value;
    };
    const auto machine_and_placement =
        [&]() -> StatusOr<std::pair<int, Placement>> {
      StatusOr<std::string> machine_text = param("machine");
      if (!machine_text.ok()) {
        return machine_text.status();
      }
      StatusOr<int> machine = ParseInt(*machine_text, "machine");
      if (!machine.ok() || *machine < 0 ||
          static_cast<size_t>(*machine) >= rack_.machines().size()) {
        return Status::DataLoss(
            StrFormat("journal line %zu: bad machine index", line_number));
      }
      StatusOr<std::string> csv = param("placement");
      if (!csv.ok()) {
        return csv.status();
      }
      StatusOr<Placement> placement = wire::PlacementFromCsv(
          rack_.machines()[*machine].description.topo, *csv);
      if (!placement.ok()) {
        return Status::DataLoss(StrFormat("journal line %zu: %s", line_number,
                                          placement.status().message().c_str()));
      }
      return std::make_pair(*machine, *std::move(placement));
    };

    Status applied = Status::Ok();
    if (record->verb == "ADMITTED") {
      StatusOr<std::string> name = param("name");
      StatusOr<std::string> desc_text = param("desc");
      if (!name.ok() || !desc_text.ok()) {
        return !name.ok() ? name.status() : desc_text.status();
      }
      StatusOr<std::pair<int, Placement>> target = machine_and_placement();
      if (!target.ok()) {
        return target.status();
      }
      StatusOr<WorkloadDescription> description =
          WorkloadDescriptionFromText(*desc_text);
      if (!description.ok()) {
        return Status::DataLoss(StrFormat("journal line %zu: %s", line_number,
                                          description.status().message().c_str()));
      }
      applied = rack_.AdmitAt(*name, target->first, *description, target->second);
    } else if (record->verb == "DEPARTED") {
      StatusOr<std::string> name = param("name");
      if (!name.ok()) {
        return name.status();
      }
      applied = rack_.Depart(*name).ok()
                    ? Status::Ok()
                    : Status::DataLoss(StrFormat(
                          "journal line %zu: departed job '%s' is not resident",
                          line_number, name->c_str()));
    } else if (record->verb == "MOVED") {
      StatusOr<std::string> name = param("name");
      if (!name.ok()) {
        return name.status();
      }
      StatusOr<std::pair<int, Placement>> target = machine_and_placement();
      if (!target.ok()) {
        return target.status();
      }
      applied = rack_.Move(*name, target->first, target->second);
    } else {
      return Status::DataLoss(StrFormat("journal line %zu: unknown record '%s'",
                                        line_number, record->verb.c_str()));
    }
    if (!applied.ok()) {
      return Status::DataLoss(StrFormat("journal line %zu: %s", line_number,
                                        applied.message().c_str()));
    }
  }
  *saw_magic_out = saw_magic;
  return Status::Ok();
}

Status PlacementService::AppendJournal(const wire::Request& record) {
  std::string detail = record.verb;
  if (const std::string* name = record.Find("name")) {
    detail += " name=" + wire::EscapeValue(*name);
  }
  if (journal_ == nullptr) {
    // No journal file, but the mutation still happened: the flight recorder
    // keeps the mutation sequence observable for journal-less services.
    recorder_->Record("journal", detail);
    return Status::Ok();
  }
  const std::string line = wire::FormatRequest(record);
  const int64_t start_ns = NowNs();
  if (std::fprintf(journal_, "%s\n", line.c_str()) < 0 ||
      std::fflush(journal_) != 0) {
    obs::EventLog::Global().Log(
        obs::LogLevel::kError, "serve.journal", "journal append failed",
        {{"path", options_.journal_path}, {"record", record.verb}});
    recorder_->Record("journal", detail, /*ok=*/false);
    return Status::Unavailable(StrFormat("cannot append to journal '%s'",
                                         options_.journal_path.c_str()));
  }
  JournalAppendLatency().Observe(static_cast<double>(NowNs() - start_ns) /
                                 1000.0);
  JournalBytes().Increment(line.size() + 1);
  recorder_->Record("journal", detail);
  return Status::Ok();
}

}  // namespace serve
}  // namespace pandia
