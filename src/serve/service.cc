#include "src/serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <optional>
#include <utility>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/serialize/serialize.h"
#include "src/topology/resource_index.h"
#include "src/util/strings.h"

namespace pandia {
namespace serve {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-verb request instruments. One static table keyed by verb keeps metric
// cardinality bounded: every verb the service speaks gets its own counters
// and latency histogram, and anything else (unknown verbs, garbage) shares
// the "other" slot.
struct VerbInstruments {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::Histogram* latency_us;
};

const VerbInstruments& InstrumentsFor(const std::string& verb) {
  static const std::map<std::string, VerbInstruments>* table = [] {
    auto* map = new std::map<std::string, VerbInstruments>;
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    for (const auto& [verb_key, stem] :
         std::initializer_list<std::pair<const char*, const char*>>{
             {"HELLO", "hello"},
             {"ADMIT", "admit"},
             {"DEPART", "depart"},
             {"REBALANCE", "rebalance"},
             {"COMPACT", "compact"},
             {"STATUS", "status"},
             {"METRICS", "metrics"},
             {"TELEMETRY", "telemetry"},
             {"RECORDER", "recorder"},
             {"SHUTDOWN", "shutdown"},
             {"", "other"}}) {
      const std::string prefix = std::string("serve.") + stem;
      map->emplace(verb_key,
                   VerbInstruments{
                       &registry.counter(prefix + ".requests"),
                       &registry.counter(prefix + ".errors"),
                       &registry.histogram(prefix + ".latency_us",
                                           obs::ExponentialBounds(1, 2, 20))});
    }
    return map;
  }();
  const auto it = table->find(verb);
  return it != table->end() ? it->second : table->at("");
}

obs::Gauge& DegradedGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().gauge("serve.degraded");
  return gauge;
}
obs::Gauge& LiveRatioGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().gauge("serve.journal.live_ratio");
  return gauge;
}
obs::Counter& ParseErrors() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("serve.parse_errors");
  return counter;
}
obs::Gauge& JobsGauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::Global().gauge("serve.jobs");
  return gauge;
}
obs::Gauge& FreeThreadsGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().gauge("serve.free_threads");
  return gauge;
}

StatusOr<int> ParseInt(const std::string& value, const char* what) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || parsed < -1000000000L || parsed > 1000000000L) {
    return Status::InvalidArgument(
        StrFormat("parameter '%s' must be an integer, got '%s'", what,
                  value.c_str()));
  }
  return static_cast<int>(parsed);
}

StatusOr<uint64_t> ParseUint64(const std::string& value, const char* what) {
  if (value.empty() || value.size() > 19) {
    return Status::InvalidArgument(StrFormat(
        "parameter '%s' must be a non-negative integer, got '%s'", what,
        value.c_str()));
  }
  uint64_t parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(StrFormat(
          "parameter '%s' must be a non-negative integer, got '%s'", what,
          value.c_str()));
    }
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  return parsed;
}

StatusOr<double> ParseDouble(const std::string& value, const char* what) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || *end != '\0') {
    return Status::InvalidArgument(StrFormat(
        "parameter '%s' must be a number, got '%s'", what, value.c_str()));
  }
  return parsed;
}

bool IsMutatingVerb(const std::string& verb) {
  return verb == "ADMIT" || verb == "DEPART" || verb == "REBALANCE" ||
         verb == "COMPACT";
}

// The resource the job is predicted to be limited by: the bottleneck of its
// most-slowed thread ("none" for an uncontended or thread-less prediction).
std::string BottleneckName(const MachineTopology& topo,
                           const Prediction& prediction) {
  int bottleneck = -1;
  double worst = -1.0;
  for (const ThreadPrediction& thread : prediction.threads) {
    if (thread.overall_slowdown > worst) {
      worst = thread.overall_slowdown;
      bottleneck = thread.bottleneck;
    }
  }
  if (bottleneck < 0) {
    return "none";
  }
  return ResourceIndex(topo).Name(bottleneck);
}

}  // namespace

StatusOr<PlacementService> PlacementService::Create(
    std::vector<rack::RackMachine> machines, ServiceOptions options) {
  if (machines.empty()) {
    return Status::InvalidArgument("a placement service needs at least one machine");
  }
  PlacementService service(std::move(machines), std::move(options));
  const std::string& path = service.options_.journal_path;
  if (!path.empty()) {
    // The service is not shared yet, but replay touches guarded state, so
    // take the (uncontended) lock for the analysis.
    util::MutexLock lock(service.mu_);
    StatusOr<Journal> journal = Journal::Open(path, service.options_.journal);
    if (!journal.ok()) {
      return journal.status();
    }
    service.journal_ = std::make_unique<Journal>(std::move(*journal));
    const JournalRecovery& recovered = service.journal_->recovery();
    size_t start = 0;
    if (!recovered.records.empty() &&
        recovered.records.front().request.verb == "SNAPSHOT") {
      PANDIA_RETURN_IF_ERROR(service.RestoreSnapshot(
          recovered.records.front().request, recovered.records.front().line));
      start = 1;
    }
    for (size_t i = start; i < recovered.records.size(); ++i) {
      const JournalRecord& record = recovered.records[i];
      if (record.request.verb == "SNAPSHOT") {
        return Status::DataLoss(StrFormat(
            "journal line %zu: SNAPSHOT is only valid as the first record",
            record.line));
      }
      if (record.request.verb == "NOTE") {
        continue;  // degraded-mode probes carry no state
      }
      PANDIA_RETURN_IF_ERROR(service.ApplyRecord(record.request, record.line));
    }
    if (recovered.truncated_torn_tail) {
      obs::EventLog::Global().Log(
          obs::LogLevel::kWarn, "serve.journal",
          "truncated torn journal tail (unacknowledged record from a crash "
          "mid-append)",
          {{"path", path},
           {"bytes", StrFormat("%llu", static_cast<unsigned long long>(
                                           recovered.truncated_bytes))}});
    }
  }
  return service;
}

PlacementService::PlacementService(std::vector<rack::RackMachine> machines,
                                   ServiceOptions options)
    : options_(std::move(options)),
      rack_(std::move(machines), options_.prediction),
      recorder_(std::make_unique<obs::FlightRecorder>(256)) {}

PlacementService::PlacementService(PlacementService&& other) noexcept
    : options_(std::move(other.options_)),
      rack_(std::move(other.rack_)),
      journal_(std::move(other.journal_)),
      shutdown_(other.shutdown_),
      degraded_(other.degraded_),
      journal_failures_(other.journal_failures_),
      recorder_(std::move(other.recorder_)) {}

PlacementService& PlacementService::operator=(PlacementService&& other) noexcept {
  if (this != &other) {
    options_ = std::move(other.options_);
    rack_ = std::move(other.rack_);
    journal_ = std::move(other.journal_);
    shutdown_ = other.shutdown_;
    degraded_ = other.degraded_;
    journal_failures_ = other.journal_failures_;
    recorder_ = std::move(other.recorder_);
  }
  return *this;
}

PlacementService::~PlacementService() = default;

std::string PlacementService::HandleLine(const std::string& line) {
  StatusOr<wire::Request> request = wire::ParseRequest(line);
  if (!request.ok()) {
    ParseErrors().Increment();
    obs::EventLog::Global().Log(
        obs::LogLevel::kWarn, "serve.parse", "unparseable request line",
        {{"error", request.status().message()}});
    recorder_->Record("request", "PARSE", /*ok=*/false);
    return wire::FormatResponse(wire::Response::Failure(request.status()));
  }
  return wire::FormatResponse(Handle(*request));
}

wire::Response PlacementService::Handle(const wire::Request& request) {
  const int64_t start_ns = NowNs();
  wire::Response response;
  {
    util::MutexLock lock(mu_);
    response = Dispatch(request);
    JobsGauge().Set(rack_.JobCount());
    int free = 0;
    for (size_t m = 0; m < rack_.machines().size(); ++m) {
      free += rack_.FreeThreadCount(static_cast<int>(m));
    }
    FreeThreadsGauge().Set(free);
    if (journal_ != nullptr) {
      LiveRatioGauge().Set(LiveRatio());
    }
  }
  const double latency_us =
      static_cast<double>(NowNs() - start_ns) / 1000.0;
  const VerbInstruments& instruments = InstrumentsFor(request.verb);
  instruments.requests->Increment();
  instruments.latency_us->Observe(latency_us);
  std::string detail = request.verb;
  if (const std::string* name = request.Find("name")) {
    detail += " name=" + wire::EscapeValue(*name);
  }
  if (!response.ok) {
    instruments.errors->Increment();
    obs::EventLog::Global().Log(
        obs::LogLevel::kWarn, "serve.request", "request failed",
        {{"verb", request.verb},
         {"code", wire::WireCodeName(response.code)},
         {"error", response.error}});
    detail += " " + wire::WireCodeName(response.code);
  }
  recorder_->Record("request", detail, response.ok);
  return response;
}

bool PlacementService::shutdown_requested() const {
  util::MutexLock lock(mu_);
  return shutdown_;
}

bool PlacementService::degraded() const {
  util::MutexLock lock(mu_);
  return degraded_;
}

wire::Response PlacementService::Dispatch(const wire::Request& request) {
  if (IsMutatingVerb(request.verb) && journal_ != nullptr) {
    if (journal_->needs_upgrade()) {
      // First mutation on a recovered v1 journal: rewrite it as a v2
      // snapshot before any record needs appending.
      if (Status upgraded = CompactJournal(); !upgraded.ok()) {
        return wire::Response::Failure(upgraded);
      }
    } else if (degraded_ && !ProbeJournal()) {
      return wire::Response::Failure(Status::Unavailable(StrFormat(
          "journal '%s' is unavailable; serving read-only (STATUS, METRICS, "
          "TELEMETRY, RECORDER)",
          options_.journal_path.c_str())));
    }
  }
  wire::Response response = DispatchVerb(request);
  // Compaction opportunity: a mutation just landed and most of the journal
  // suffix no longer describes a resident job. COMPACT itself and degraded
  // mode are excluded (the former just compacted, the latter cannot write).
  if (response.ok && IsMutatingVerb(request.verb) && request.verb != "COMPACT" &&
      journal_ != nullptr && !degraded_ &&
      journal_->records_since_snapshot() >= options_.compact_min_records &&
      LiveRatio() < options_.compact_live_ratio) {
    // The request already succeeded and its record is durable in the old
    // journal; a failed compaction is logged (inside CompactJournal) but
    // must not fail the request.
    (void)CompactJournal();
  }
  return response;
}

wire::Response PlacementService::DispatchVerb(const wire::Request& request) {
  if (request.verb == "HELLO") {
    return HandleHello(request);
  }
  if (request.verb == "ADMIT") {
    return HandleAdmit(request);
  }
  if (request.verb == "DEPART") {
    return HandleDepart(request);
  }
  if (request.verb == "REBALANCE") {
    return HandleRebalance(request);
  }
  if (request.verb == "COMPACT") {
    return HandleCompact(request);
  }
  if (request.verb == "STATUS") {
    return HandleStatus();
  }
  if (request.verb == "METRICS") {
    return HandleMetrics(request);
  }
  if (request.verb == "TELEMETRY") {
    if (!request.params.empty()) {
      return wire::Response::Failure(Status::InvalidArgument(
          StrFormat("TELEMETRY does not take parameter '%s'",
                    request.params.front().first.c_str())));
    }
    return HandleTelemetry();
  }
  if (request.verb == "RECORDER") {
    return HandleRecorder(request);
  }
  if (request.verb == "SHUTDOWN") {
    shutdown_ = true;
    if (journal_ != nullptr && !degraded_) {
      // Best-effort durability floor for a clean shutdown: whatever the
      // sync policy deferred goes to disk now.
      (void)journal_->Sync();
    }
    return wire::Response::Success("SHUTDOWN");
  }
  return wire::Response::Failure(Status::InvalidArgument(
      StrFormat("unknown verb '%s' (want HELLO, ADMIT, DEPART, REBALANCE, "
                "COMPACT, STATUS, METRICS, TELEMETRY, RECORDER, or SHUTDOWN)",
                request.verb.c_str())));
}

wire::Response PlacementService::HandleHello(const wire::Request& request) const {
  // Strict like TELEMETRY: the handshake takes no parameters, so future
  // parameterized hellos can be detected by old servers as errors instead
  // of being silently half-understood.
  if (!request.params.empty()) {
    return wire::Response::Failure(Status::InvalidArgument(
        StrFormat("HELLO does not take parameter '%s'",
                  request.params.front().first.c_str())));
  }
  wire::Response response = wire::Response::Success("HELLO");
  response.payload.push_back(
      StrFormat("protocol = %d", wire::kProtocolVersion));
  // Capabilities are sorted, comma-separated tokens; the list names
  // post-v1 extensions this server speaks (the fleet layer appends its
  // own). Kept static per service type so handshakes are deterministic.
  response.payload.push_back("capabilities = compact,recorder,telemetry");
  return response;
}

wire::Response PlacementService::HandleAdmit(const wire::Request& request) {
  rack::JobRequest job;
  rack::Policy policy = options_.default_policy;
  for (const auto& [key, value] : request.params) {
    if (key == "name") {
      job.name = value;
    } else if (key == "threads") {
      StatusOr<int> threads = ParseInt(value, "threads");
      if (!threads.ok()) {
        return wire::Response::Failure(threads.status());
      }
      job.requested_threads = *threads;
    } else if (key == "policy") {
      StatusOr<rack::Policy> parsed = rack::PolicyFromName(value);
      if (!parsed.ok()) {
        return wire::Response::Failure(parsed.status());
      }
      policy = *parsed;
    } else if (key.rfind("desc.", 0) == 0) {
      const std::string type = key.substr(5);
      if (type.empty()) {
        return wire::Response::Failure(
            Status::InvalidArgument("description key 'desc.' names no machine type"));
      }
      StatusOr<WorkloadDescription> description = WorkloadDescriptionFromText(value);
      if (!description.ok()) {
        return wire::Response::Failure(Status::InvalidArgument(
            StrFormat("desc.%s: %s", type.c_str(),
                      description.status().message().c_str())));
      }
      job.descriptions.emplace(type, *std::move(description));
    } else {
      return wire::Response::Failure(Status::InvalidArgument(
          StrFormat("ADMIT does not take parameter '%s'", key.c_str())));
    }
  }
  if (job.descriptions.empty()) {
    return wire::Response::Failure(Status::InvalidArgument(
        "ADMIT needs at least one desc.<machine-type> parameter"));
  }

  // Full-state capture for rollback: a failed journal append must leave the
  // rack — including mutation counters and telemetry baselines — exactly as
  // if the admission had never been tried.
  const rack::Rack::SavedState saved = rack_.SaveState();
  StatusOr<rack::Assignment> admitted = rack_.Admit(job, policy);
  if (!admitted.ok()) {
    return wire::Response::Failure(admitted.status());
  }
  const int machine_index = admitted->machine_index;
  const rack::RackMachine& machine = rack_.machines()[machine_index];

  wire::Request record;
  record.verb = "ADMITTED";
  record.params.emplace_back("name", job.name);
  record.params.emplace_back("machine", StrFormat("%d", machine_index));
  record.params.emplace_back("placement", wire::PlacementToCsv(*admitted->placement));
  record.params.emplace_back(
      "desc", WorkloadDescriptionToText(
                  job.descriptions.at(machine.description.topo.name)));
  if (Status journaled = AppendJournal(record); !journaled.ok()) {
    // Unwind the admission: live state must never hold a mutation the
    // journal (and the client, who sees err) does not.
    (void)rack_.RestoreState(saved);
    obs::EventLog::Global().Log(obs::LogLevel::kWarn, "serve.rollback",
                                "rolled back admission after journal failure",
                                {{"name", job.name}});
    recorder_->Record("rollback", "ADMIT name=" + wire::EscapeValue(job.name),
                      /*ok=*/false);
    return wire::Response::Failure(journaled);
  }

  wire::Response response = wire::Response::Success("ADMIT");
  response.payload.push_back(StrFormat("machine = %d", machine_index));
  response.payload.push_back(
      StrFormat("machine-name = %s", wire::EscapeValue(machine.name).c_str()));
  response.payload.push_back(StrFormat(
      "placement = %s", wire::PlacementToCsv(*admitted->placement).c_str()));
  response.payload.push_back(
      StrFormat("threads = %d", admitted->placement->TotalThreads()));
  response.payload.push_back(
      StrFormat("speedup = %.6f", admitted->predicted_speedup));
  return response;
}

Status PlacementService::ReplaceDegraded(int machine_index,
                                         std::vector<std::string>& payload) {
  // Snapshot names first: moves re-order the resident vector.
  std::vector<std::string> names;
  for (const rack::RackJob& job : rack_.JobsOn(machine_index)) {
    names.push_back(job.name);
  }
  const std::string type =
      rack_.machines()[machine_index].description.topo.name;
  for (const std::string& name : names) {
    const auto& residents = rack_.JobsOn(machine_index);
    const auto it = std::find_if(residents.begin(), residents.end(),
                                 [&](const rack::RackJob& r) { return r.name == name; });
    if (it == residents.end()) {
      continue;
    }
    const size_t index = static_cast<size_t>(it - residents.begin());
    const std::vector<Prediction> current = rack_.PredictMachine(machine_index);
    const double current_speedup = current[index].speedup;

    rack::JobRequest probe;
    probe.name = name;
    probe.descriptions.emplace(type, it->description);
    probe.requested_threads = it->placement.TotalThreads();
    const std::optional<rack::Rack::Candidate> candidate = rack_.BestCandidateOn(
        machine_index, probe, rack::Policy::kBestSpeedup, &name);
    if (!candidate.has_value() ||
        candidate->job_speedup <= current_speedup * (1.0 + options_.replace_margin)) {
      continue;
    }
    const rack::Rack::SavedState saved = rack_.SaveState();
    PANDIA_RETURN_IF_ERROR(rack_.Move(name, machine_index, candidate->placement));
    wire::Request record;
    record.verb = "MOVED";
    record.params.emplace_back("name", name);
    record.params.emplace_back("machine", StrFormat("%d", machine_index));
    record.params.emplace_back("placement",
                               wire::PlacementToCsv(candidate->placement));
    if (Status journaled = AppendJournal(record); !journaled.ok()) {
      // Unrecorded moves must not survive in live state (counters and the
      // job's move/telemetry baselines included).
      (void)rack_.RestoreState(saved);
      obs::EventLog::Global().Log(obs::LogLevel::kWarn, "serve.rollback",
                                  "rolled back re-placement after journal failure",
                                  {{"name", name}});
      recorder_->Record("rollback", "MOVE name=" + wire::EscapeValue(name),
                        /*ok=*/false);
      return journaled;
    }
    payload.push_back(StrFormat("moved = %s machine=%d placement=%s speedup=%.6f",
                                wire::EscapeValue(name).c_str(), machine_index,
                                wire::PlacementToCsv(candidate->placement).c_str(),
                                candidate->job_speedup));
  }
  return Status::Ok();
}

wire::Response PlacementService::HandleDepart(const wire::Request& request) {
  const std::string* name = request.Find("name");
  if (name == nullptr) {
    return wire::Response::Failure(
        Status::InvalidArgument("DEPART needs a name=<job> parameter"));
  }
  for (const auto& [key, value] : request.params) {
    if (key != "name") {
      return wire::Response::Failure(Status::InvalidArgument(
          StrFormat("DEPART does not take parameter '%s'", key.c_str())));
    }
  }
  // Full-state capture before removal: restoring (rather than re-admitting)
  // on a failed journal append keeps the job's admit_seq / move count /
  // co-event baseline and the rack's mutation counters, so TELEMETRY is
  // byte-identical to never having tried the departure.
  const rack::Rack::SavedState saved = rack_.SaveState();
  StatusOr<int> departed = rack_.Depart(*name);
  if (!departed.ok()) {
    return wire::Response::Failure(departed.status());
  }
  wire::Request record;
  record.verb = "DEPARTED";
  record.params.emplace_back("name", *name);
  if (Status journaled = AppendJournal(record); !journaled.ok()) {
    (void)rack_.RestoreState(saved);
    obs::EventLog::Global().Log(obs::LogLevel::kWarn, "serve.rollback",
                                "rolled back departure after journal failure",
                                {{"name", *name}});
    recorder_->Record("rollback", "DEPART name=" + wire::EscapeValue(*name),
                      /*ok=*/false);
    return wire::Response::Failure(journaled);
  }

  wire::Response response = wire::Response::Success("DEPART");
  response.payload.push_back(StrFormat("machine = %d", *departed));
  // Freed threads are an opportunity: re-place neighbours the departed job
  // was degrading. The departure itself is already durable and applied, so
  // a failed re-placement (journal append mid-MOVE; the move is rolled
  // back inside ReplaceDegraded) must not convert this response into an
  // error — the client would be told a committed departure failed, and a
  // retry would get 'not resident'. Report it as a warning row instead.
  if (Status replaced = ReplaceDegraded(*departed, response.payload);
      !replaced.ok()) {
    response.payload.push_back(StrFormat("warning = re-placement skipped: %s",
                                         replaced.message().c_str()));
  }
  return response;
}

wire::Response PlacementService::HandleRebalance(const wire::Request& request) {
  int max_migrations = options_.default_max_migrations;
  for (const auto& [key, value] : request.params) {
    if (key == "max-migrations") {
      StatusOr<int> parsed = ParseInt(value, "max-migrations");
      if (!parsed.ok()) {
        return wire::Response::Failure(parsed.status());
      }
      if (*parsed < 0) {
        return wire::Response::Failure(Status::InvalidArgument(
            "parameter 'max-migrations' must be non-negative"));
      }
      max_migrations = *parsed;
    } else {
      return wire::Response::Failure(Status::InvalidArgument(
          StrFormat("REBALANCE does not take parameter '%s'", key.c_str())));
    }
  }

  wire::Response response = wire::Response::Success("REBALANCE");
  int migrations = 0;
  // Each round re-places the currently worst-predicted job if some machine
  // of its type offers a margin-beating improvement. Stops at the migration
  // budget or at a fixed point (no candidate improves).
  while (migrations < max_migrations) {
    struct Entry {
      std::string name;
      int machine = -1;
      double speedup = 0.0;
    };
    std::vector<Entry> jobs;
    for (size_t m = 0; m < rack_.machines().size(); ++m) {
      const std::vector<Prediction> predictions =
          rack_.PredictMachine(static_cast<int>(m));
      const auto& residents = rack_.JobsOn(static_cast<int>(m));
      for (size_t i = 0; i < residents.size(); ++i) {
        jobs.push_back(
            Entry{residents[i].name, static_cast<int>(m), predictions[i].speedup});
      }
    }
    // Worst predicted speedup first; names break ties deterministically.
    std::sort(jobs.begin(), jobs.end(), [](const Entry& a, const Entry& b) {
      return a.speedup != b.speedup ? a.speedup < b.speedup : a.name < b.name;
    });

    bool moved = false;
    for (const Entry& entry : jobs) {
      const auto& residents = rack_.JobsOn(entry.machine);
      const auto it =
          std::find_if(residents.begin(), residents.end(),
                       [&](const rack::RackJob& r) { return r.name == entry.name; });
      const std::string type =
          rack_.machines()[entry.machine].description.topo.name;
      rack::JobRequest probe;
      probe.name = entry.name;
      probe.descriptions.emplace(type, it->description);
      probe.requested_threads = it->placement.TotalThreads();

      // Candidate machines: same type only (the stored description is
      // machine-specific, §4), own machine included via self-exclusion.
      std::optional<rack::Rack::Candidate> best;
      int best_machine = -1;
      for (size_t m = 0; m < rack_.machines().size(); ++m) {
        if (rack_.machines()[m].description.topo.name != type) {
          continue;
        }
        const std::string* exclude =
            static_cast<int>(m) == entry.machine ? &entry.name : nullptr;
        std::optional<rack::Rack::Candidate> candidate = rack_.BestCandidateOn(
            static_cast<int>(m), probe, rack::Policy::kBestSpeedup, exclude);
        if (!candidate.has_value()) {
          continue;
        }
        if (!best.has_value() || candidate->job_speedup > best->job_speedup) {
          best = std::move(candidate);
          best_machine = static_cast<int>(m);
        }
      }
      if (!best.has_value() ||
          best->job_speedup <= entry.speedup * (1.0 + options_.replace_margin)) {
        continue;
      }
      const rack::Rack::SavedState saved = rack_.SaveState();
      if (Status status = rack_.Move(entry.name, best_machine, best->placement);
          !status.ok()) {
        return wire::Response::Failure(status);
      }
      wire::Request record;
      record.verb = "MOVED";
      record.params.emplace_back("name", entry.name);
      record.params.emplace_back("machine", StrFormat("%d", best_machine));
      record.params.emplace_back("placement", wire::PlacementToCsv(best->placement));
      if (Status journaled = AppendJournal(record); !journaled.ok()) {
        // Unrecorded moves must not survive in live state (counters and
        // telemetry baselines included).
        (void)rack_.RestoreState(saved);
        obs::EventLog::Global().Log(
            obs::LogLevel::kWarn, "serve.rollback",
            "rolled back rebalance move after journal failure",
            {{"name", entry.name}});
        recorder_->Record("rollback",
                          "MOVE name=" + wire::EscapeValue(entry.name),
                          /*ok=*/false);
        return wire::Response::Failure(journaled);
      }
      response.payload.push_back(
          StrFormat("moved = %s machine=%d placement=%s speedup=%.6f",
                    wire::EscapeValue(entry.name).c_str(), best_machine,
                    wire::PlacementToCsv(best->placement).c_str(),
                    best->job_speedup));
      ++migrations;
      moved = true;
      break;  // re-rank after every migration
    }
    if (!moved) {
      break;
    }
  }
  response.payload.insert(response.payload.begin(),
                          StrFormat("migrations = %d", migrations));
  return response;
}

wire::Response PlacementService::HandleStatus() const {
  wire::Response response = wire::Response::Success("STATUS");
  response.payload.push_back(StrFormat("version = %d", wire::kProtocolVersion));
  response.payload.push_back(
      StrFormat("policy = %s", rack::PolicyName(options_.default_policy).c_str()));
  response.payload.push_back(
      StrFormat("machines = %zu", rack_.machines().size()));
  response.payload.push_back(StrFormat("jobs = %d", rack_.JobCount()));

  struct JobRow {
    std::string name;
    std::string line;
  };
  std::vector<JobRow> rows;
  for (size_t m = 0; m < rack_.machines().size(); ++m) {
    const rack::RackMachine& machine = rack_.machines()[m];
    const auto& residents = rack_.JobsOn(static_cast<int>(m));
    response.payload.push_back(StrFormat(
        "machine = %zu name=%s type=%s free=%d jobs=%zu", m,
        wire::EscapeValue(machine.name).c_str(),
        wire::EscapeValue(machine.description.topo.name).c_str(),
        rack_.FreeThreadCount(static_cast<int>(m)), residents.size()));
    const std::vector<Prediction> predictions =
        rack_.PredictMachine(static_cast<int>(m));
    for (size_t i = 0; i < residents.size(); ++i) {
      const rack::RackJob& job = residents[i];
      const Prediction& prediction = predictions[i];
      rows.push_back(JobRow{
          job.name,
          StrFormat("job = %s machine=%zu threads=%d speedup=%.6f slowdown=%.6f "
                    "bottleneck=%s placement=%s",
                    wire::EscapeValue(job.name).c_str(), m,
                    job.placement.TotalThreads(), prediction.speedup,
                    prediction.speedup > 0.0 ? 1.0 / prediction.speedup : 0.0,
                    BottleneckName(machine.description.topo, prediction).c_str(),
                    wire::PlacementToCsv(job.placement).c_str())});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const JobRow& a, const JobRow& b) { return a.name < b.name; });
  for (JobRow& row : rows) {
    response.payload.push_back(std::move(row.line));
  }
  return response;
}

wire::Response PlacementService::HandleMetrics(const wire::Request& request) const {
  bool expo = false;
  for (const auto& [key, value] : request.params) {
    if (key != "format") {
      return wire::Response::Failure(Status::InvalidArgument(
          StrFormat("METRICS does not take parameter '%s'", key.c_str())));
    }
    if (value == "expo") {
      expo = true;
    } else if (value != "table") {
      return wire::Response::Failure(Status::InvalidArgument(StrFormat(
          "unknown METRICS format '%s' (want table or expo)", value.c_str())));
    }
  }
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  wire::Response response = wire::Response::Success("METRICS");
  if (expo) {
    // Line-oriented exposition format (grammar in DESIGN.md): one
    // "<metric> <value>" sample per line, histogram buckets as
    // name{le=BOUND} with cumulative counts, plus name.count / name.sum.
    for (const auto& counter : snapshot.counters) {
      response.payload.push_back(
          StrFormat("%s %llu", counter.name.c_str(),
                    static_cast<unsigned long long>(counter.value)));
    }
    for (const auto& gauge : snapshot.gauges) {
      response.payload.push_back(
          StrFormat("%s %.6f", gauge.name.c_str(), gauge.value));
    }
    for (const auto& histogram : snapshot.histograms) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < histogram.buckets.size(); ++i) {
        cumulative += histogram.buckets[i];
        const std::string le =
            i < histogram.bounds.size() ? StrFormat("%.6g", histogram.bounds[i])
                                        : std::string("+inf");
        response.payload.push_back(
            StrFormat("%s{le=%s} %llu", histogram.name.c_str(), le.c_str(),
                      static_cast<unsigned long long>(cumulative)));
      }
      response.payload.push_back(
          StrFormat("%s.count %llu", histogram.name.c_str(),
                    static_cast<unsigned long long>(histogram.count)));
      response.payload.push_back(
          StrFormat("%s.sum %.6f", histogram.name.c_str(), histogram.sum));
    }
    return response;
  }
  for (const auto& counter : snapshot.counters) {
    response.payload.push_back(
        StrFormat("counter %s = %llu", counter.name.c_str(),
                  static_cast<unsigned long long>(counter.value)));
  }
  for (const auto& gauge : snapshot.gauges) {
    response.payload.push_back(
        StrFormat("gauge %s = %.6f", gauge.name.c_str(), gauge.value));
  }
  for (const auto& histogram : snapshot.histograms) {
    response.payload.push_back(StrFormat(
        "histogram %s count=%llu sum=%.6f", histogram.name.c_str(),
        static_cast<unsigned long long>(histogram.count), histogram.sum));
  }
  return response;
}

wire::Response PlacementService::HandleTelemetry() const {
  const rack::Rack::TelemetrySnapshot telemetry = rack_.Telemetry();
  wire::Response response = wire::Response::Success("TELEMETRY");
  response.payload.push_back(StrFormat(
      "mutation-seq = %llu",
      static_cast<unsigned long long>(telemetry.mutation_seq)));
  response.payload.push_back(
      StrFormat("jobs = %zu", telemetry.jobs.size()));
  // Sorted by name, like STATUS: deterministic output for tests and diffs.
  std::vector<const rack::Rack::JobTelemetry*> jobs;
  jobs.reserve(telemetry.jobs.size());
  for (const rack::Rack::JobTelemetry& job : telemetry.jobs) {
    jobs.push_back(&job);
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const rack::Rack::JobTelemetry* a,
               const rack::Rack::JobTelemetry* b) { return a->name < b->name; });
  for (const rack::Rack::JobTelemetry* job : jobs) {
    // Degradation: how much worse the job is predicted to run now than
    // under the co-location it was admitted into (1.0 = unchanged).
    const double degradation = job->current_speedup > 0.0
                                   ? job->speedup_at_admit / job->current_speedup
                                   : 0.0;
    response.payload.push_back(StrFormat(
        "job = %s machine=%d machine-name=%s threads=%d "
        "speedup-at-admit=%.6f slowdown-at-admit=%.6f current-speedup=%.6f "
        "degradation=%.6f admit-seq=%llu moves=%d co-events=%llu",
        wire::EscapeValue(job->name).c_str(), job->machine_index,
        wire::EscapeValue(job->machine).c_str(), job->threads,
        job->speedup_at_admit, job->slowdown_at_admit, job->current_speedup,
        degradation, static_cast<unsigned long long>(job->admit_seq),
        job->moves, static_cast<unsigned long long>(job->co_events)));
  }
  return response;
}

wire::Response PlacementService::HandleRecorder(const wire::Request& request) const {
  if (!request.params.empty()) {
    return wire::Response::Failure(Status::InvalidArgument(
        StrFormat("RECORDER does not take parameter '%s'",
                  request.params.front().first.c_str())));
  }
  const std::vector<obs::FlightEvent> events = recorder_->Dump();
  wire::Response response = wire::Response::Success("RECORDER");
  response.payload.push_back(
      StrFormat("capacity = %zu", recorder_->capacity()));
  response.payload.push_back(StrFormat(
      "recorded = %llu", static_cast<unsigned long long>(recorder_->recorded())));
  response.payload.push_back(StrFormat(
      "dropped = %llu", static_cast<unsigned long long>(recorder_->dropped())));
  const int64_t origin = events.empty() ? 0 : events.front().timestamp_ns;
  for (const obs::FlightEvent& event : events) {
    response.payload.push_back(
        "event = " + obs::FormatFlightEvent(event, origin));
  }
  return response;
}

Status PlacementService::ApplyRecord(const wire::Request& record, size_t line) {
  const auto param = [&](const char* key) -> StatusOr<std::string> {
    const std::string* value = record.Find(key);
    if (value == nullptr) {
      return Status::DataLoss(StrFormat("journal line %zu: %s record misses '%s'",
                                        line, record.verb.c_str(), key));
    }
    return *value;
  };
  const auto machine_and_placement =
      [&]() -> StatusOr<std::pair<int, Placement>> {
    StatusOr<std::string> machine_text = param("machine");
    if (!machine_text.ok()) {
      return machine_text.status();
    }
    StatusOr<int> machine = ParseInt(*machine_text, "machine");
    if (!machine.ok() || *machine < 0 ||
        static_cast<size_t>(*machine) >= rack_.machines().size()) {
      return Status::DataLoss(
          StrFormat("journal line %zu: bad machine index", line));
    }
    StatusOr<std::string> csv = param("placement");
    if (!csv.ok()) {
      return csv.status();
    }
    StatusOr<Placement> placement = wire::PlacementFromCsv(
        rack_.machines()[*machine].description.topo, *csv);
    if (!placement.ok()) {
      return Status::DataLoss(StrFormat("journal line %zu: %s", line,
                                        placement.status().message().c_str()));
    }
    return std::make_pair(*machine, *std::move(placement));
  };

  Status applied = Status::Ok();
  if (record.verb == "ADMITTED") {
    StatusOr<std::string> name = param("name");
    StatusOr<std::string> desc_text = param("desc");
    if (!name.ok() || !desc_text.ok()) {
      return !name.ok() ? name.status() : desc_text.status();
    }
    StatusOr<std::pair<int, Placement>> target = machine_and_placement();
    if (!target.ok()) {
      return target.status();
    }
    StatusOr<WorkloadDescription> description =
        WorkloadDescriptionFromText(*desc_text);
    if (!description.ok()) {
      return Status::DataLoss(StrFormat("journal line %zu: %s", line,
                                        description.status().message().c_str()));
    }
    applied = rack_.AdmitAt(*name, target->first, *description, target->second);
  } else if (record.verb == "DEPARTED") {
    StatusOr<std::string> name = param("name");
    if (!name.ok()) {
      return name.status();
    }
    applied = rack_.Depart(*name).ok()
                  ? Status::Ok()
                  : Status::DataLoss(StrFormat(
                        "journal line %zu: departed job '%s' is not resident",
                        line, name->c_str()));
  } else if (record.verb == "MOVED") {
    StatusOr<std::string> name = param("name");
    if (!name.ok()) {
      return name.status();
    }
    StatusOr<std::pair<int, Placement>> target = machine_and_placement();
    if (!target.ok()) {
      return target.status();
    }
    applied = rack_.Move(*name, target->first, target->second);
  } else {
    return Status::DataLoss(StrFormat("journal line %zu: unknown record '%s'",
                                      line, record.verb.c_str()));
  }
  if (!applied.ok()) {
    return Status::DataLoss(StrFormat("journal line %zu: %s", line,
                                      applied.message().c_str()));
  }
  return Status::Ok();
}

wire::Request PlacementService::BuildSnapshot() const {
  const rack::Rack::SavedState state = rack_.SaveState();
  wire::Request snapshot;
  snapshot.verb = "SNAPSHOT";
  snapshot.params.emplace_back(
      "mutation-seq",
      StrFormat("%llu", static_cast<unsigned long long>(state.mutation_seq)));
  std::string events;
  for (size_t m = 0; m < state.machine_events.size(); ++m) {
    if (m > 0) {
      events += ',';
    }
    events += StrFormat(
        "%llu", static_cast<unsigned long long>(state.machine_events[m]));
  }
  snapshot.params.emplace_back("events", events);
  snapshot.params.emplace_back("jobs", StrFormat("%zu", state.jobs.size()));
  for (size_t i = 0; i < state.jobs.size(); ++i) {
    const rack::Rack::SavedJob& saved = state.jobs[i];
    wire::Request job;
    job.verb = "JOB";
    job.params.emplace_back("name", saved.job.name);
    job.params.emplace_back("machine", StrFormat("%d", saved.machine_index));
    job.params.emplace_back("placement",
                            wire::PlacementToCsv(saved.job.placement));
    // %.17g: doubles round-trip exactly, so speedup-at-admit (and with it
    // TELEMETRY) is byte-identical across snapshot + restart.
    job.params.emplace_back("speedup",
                            StrFormat("%.17g", saved.job.speedup_at_admit));
    job.params.emplace_back(
        "admit-seq",
        StrFormat("%llu", static_cast<unsigned long long>(saved.job.admit_seq)));
    job.params.emplace_back("moves", StrFormat("%d", saved.job.moves));
    job.params.emplace_back(
        "events-at-placement",
        StrFormat("%llu", static_cast<unsigned long long>(
                              saved.job.machine_events_at_placement)));
    job.params.emplace_back("desc",
                            WorkloadDescriptionToText(saved.job.description));
    // The formatted JOB line travels as one (re-escaped) value; nesting the
    // escaping round-trips exactly.
    snapshot.params.emplace_back(StrFormat("job.%zu", i),
                                 wire::FormatRequest(job));
  }
  return snapshot;
}

Status PlacementService::RestoreSnapshot(const wire::Request& record,
                                         size_t line) {
  const auto data_loss = [&](const std::string& message) {
    return Status::DataLoss(
        StrFormat("journal line %zu: %s", line, message.c_str()));
  };
  const auto param = [&](const wire::Request& request,
                         const char* key) -> StatusOr<std::string> {
    const std::string* value = request.Find(key);
    if (value == nullptr) {
      return data_loss(StrFormat("%s record misses '%s'", request.verb.c_str(),
                                 key));
    }
    return *value;
  };

  rack::Rack::SavedState state;
  StatusOr<std::string> seq_text = param(record, "mutation-seq");
  StatusOr<std::string> events_text = param(record, "events");
  StatusOr<std::string> jobs_text = param(record, "jobs");
  if (!seq_text.ok() || !events_text.ok() || !jobs_text.ok()) {
    return !seq_text.ok() ? seq_text.status()
                          : (!events_text.ok() ? events_text.status()
                                               : jobs_text.status());
  }
  StatusOr<uint64_t> mutation_seq = ParseUint64(*seq_text, "mutation-seq");
  StatusOr<uint64_t> job_count = ParseUint64(*jobs_text, "jobs");
  if (!mutation_seq.ok() || !job_count.ok()) {
    return data_loss("bad SNAPSHOT counters");
  }
  state.mutation_seq = *mutation_seq;
  for (const std::string& entry : StrSplit(*events_text, ',')) {
    StatusOr<uint64_t> value = ParseUint64(entry, "events");
    if (!value.ok()) {
      return data_loss("bad SNAPSHOT machine-event counter");
    }
    state.machine_events.push_back(*value);
  }
  for (uint64_t i = 0; i < *job_count; ++i) {
    StatusOr<std::string> job_line =
        param(record, StrFormat("job.%llu",
                                static_cast<unsigned long long>(i))
                          .c_str());
    if (!job_line.ok()) {
      return job_line.status();
    }
    StatusOr<wire::Request> job = wire::ParseRequest(*job_line);
    if (!job.ok()) {
      return data_loss(StrFormat("job.%llu: %s",
                                 static_cast<unsigned long long>(i),
                                 job.status().message().c_str()));
    }
    if (job->verb != "JOB") {
      return data_loss(StrFormat("job.%llu is a '%s' record, not JOB",
                                 static_cast<unsigned long long>(i),
                                 job->verb.c_str()));
    }
    StatusOr<std::string> name = param(*job, "name");
    StatusOr<std::string> machine_text = param(*job, "machine");
    StatusOr<std::string> placement_csv = param(*job, "placement");
    StatusOr<std::string> speedup_text = param(*job, "speedup");
    StatusOr<std::string> admit_seq_text = param(*job, "admit-seq");
    StatusOr<std::string> moves_text = param(*job, "moves");
    StatusOr<std::string> events_at_text = param(*job, "events-at-placement");
    StatusOr<std::string> desc_text = param(*job, "desc");
    for (const StatusOr<std::string>* field :
         {&name, &machine_text, &placement_csv, &speedup_text, &admit_seq_text,
          &moves_text, &events_at_text, &desc_text}) {
      if (!field->ok()) {
        return field->status();
      }
    }
    StatusOr<int> machine = ParseInt(*machine_text, "machine");
    if (!machine.ok() || *machine < 0 ||
        static_cast<size_t>(*machine) >= rack_.machines().size()) {
      return data_loss(StrFormat("job '%s' names a bad machine index",
                                 name->c_str()));
    }
    StatusOr<Placement> placement = wire::PlacementFromCsv(
        rack_.machines()[*machine].description.topo, *placement_csv);
    if (!placement.ok()) {
      return data_loss(StrFormat("job '%s': %s", name->c_str(),
                                 placement.status().message().c_str()));
    }
    StatusOr<WorkloadDescription> description =
        WorkloadDescriptionFromText(*desc_text);
    if (!description.ok()) {
      return data_loss(StrFormat("job '%s': %s", name->c_str(),
                                 description.status().message().c_str()));
    }
    StatusOr<double> speedup = ParseDouble(*speedup_text, "speedup");
    StatusOr<uint64_t> admit_seq = ParseUint64(*admit_seq_text, "admit-seq");
    StatusOr<int> moves = ParseInt(*moves_text, "moves");
    StatusOr<uint64_t> events_at =
        ParseUint64(*events_at_text, "events-at-placement");
    if (!speedup.ok() || !admit_seq.ok() || !moves.ok() || !events_at.ok()) {
      return data_loss(StrFormat("job '%s' has bad telemetry fields",
                                 name->c_str()));
    }
    // workload_fingerprint is 0 here; RestoreState recomputes it from the
    // description.
    state.jobs.push_back(rack::Rack::SavedJob{
        *machine,
        rack::RackJob{*name, *std::move(description), *std::move(placement),
                      /*workload_fingerprint=*/0, *speedup, *admit_seq, *moves,
                      *events_at}});
  }
  if (Status restored = rack_.RestoreState(state); !restored.ok()) {
    return data_loss(restored.message());
  }
  return Status::Ok();
}

double PlacementService::LiveRatio() const {
  if (journal_ == nullptr || journal_->records_since_snapshot() == 0) {
    return 1.0;
  }
  const double ratio =
      static_cast<double>(rack_.JobCount()) /
      static_cast<double>(journal_->records_since_snapshot());
  return ratio > 1.0 ? 1.0 : ratio;
}

void PlacementService::NoteJournalFailure() {
  ++journal_failures_;
  if (!degraded_ && journal_failures_ >= options_.degraded_failure_threshold) {
    degraded_ = true;
    DegradedGauge().Set(1.0);
    obs::EventLog::Global().Log(
        obs::LogLevel::kError, "serve.degraded",
        "entering read-only degraded mode after persistent journal failures",
        {{"path", options_.journal_path},
         {"failures", StrFormat("%d", journal_failures_)}});
    recorder_->Record("degraded", "enter", /*ok=*/false);
  }
}

void PlacementService::NoteJournalSuccess() {
  journal_failures_ = 0;
  if (degraded_) {
    degraded_ = false;
    DegradedGauge().Set(0.0);
    obs::EventLog::Global().Log(
        obs::LogLevel::kInfo, "serve.degraded",
        "journal append succeeded; leaving read-only degraded mode",
        {{"path", options_.journal_path}});
    recorder_->Record("degraded", "exit");
  }
}

bool PlacementService::ProbeJournal() {
  wire::Request note;
  note.verb = "NOTE";
  note.params.emplace_back("kind", "probe");
  return AppendJournal(note).ok();
}

Status PlacementService::CompactJournal() {
  const uint64_t records_before = journal_->record_count();
  const uint64_t bytes_before = journal_->size_bytes();
  if (Status compacted = journal_->Compact(BuildSnapshot()); !compacted.ok()) {
    obs::EventLog::Global().Log(
        obs::LogLevel::kError, "serve.journal", "journal compaction failed",
        {{"path", options_.journal_path}, {"error", compacted.message()}});
    recorder_->Record("journal", "COMPACT", /*ok=*/false);
    NoteJournalFailure();
    return Status::Unavailable(
        StrFormat("cannot compact journal '%s': %s",
                  options_.journal_path.c_str(), compacted.message().c_str()));
  }
  NoteJournalSuccess();
  obs::EventLog::Global().Log(
      obs::LogLevel::kInfo, "serve.journal", "compacted journal",
      {{"path", options_.journal_path},
       {"records-before", StrFormat("%llu", static_cast<unsigned long long>(
                                                records_before))},
       {"bytes-before",
        StrFormat("%llu", static_cast<unsigned long long>(bytes_before))},
       {"bytes-after", StrFormat("%llu", static_cast<unsigned long long>(
                                             journal_->size_bytes()))}});
  recorder_->Record("journal", "COMPACT");
  return Status::Ok();
}

wire::Response PlacementService::HandleCompact(const wire::Request& request) {
  if (!request.params.empty()) {
    return wire::Response::Failure(Status::InvalidArgument(
        StrFormat("COMPACT does not take parameter '%s'",
                  request.params.front().first.c_str())));
  }
  if (journal_ == nullptr) {
    return wire::Response::Failure(Status::FailedPrecondition(
        "COMPACT needs a journal (the service was started without one)"));
  }
  const uint64_t records_before = journal_->record_count();
  const uint64_t bytes_before = journal_->size_bytes();
  if (Status compacted = CompactJournal(); !compacted.ok()) {
    return wire::Response::Failure(compacted);
  }
  wire::Response response = wire::Response::Success("COMPACT");
  response.payload.push_back(StrFormat(
      "records-before = %llu", static_cast<unsigned long long>(records_before)));
  response.payload.push_back(
      StrFormat("records-after = %llu",
                static_cast<unsigned long long>(journal_->record_count())));
  response.payload.push_back(StrFormat(
      "bytes-before = %llu", static_cast<unsigned long long>(bytes_before)));
  response.payload.push_back(
      StrFormat("bytes-after = %llu",
                static_cast<unsigned long long>(journal_->size_bytes())));
  response.payload.push_back(StrFormat(
      "reclaimed-bytes = %llu",
      static_cast<unsigned long long>(
          bytes_before > journal_->size_bytes()
              ? bytes_before - journal_->size_bytes()
              : 0)));
  return response;
}

Status PlacementService::AppendJournal(const wire::Request& record) {
  std::string detail = record.verb;
  if (const std::string* name = record.Find("name")) {
    detail += " name=" + wire::EscapeValue(*name);
  }
  if (journal_ == nullptr) {
    // No journal file, but the mutation still happened: the flight recorder
    // keeps the mutation sequence observable for journal-less services.
    recorder_->Record("journal", detail);
    return Status::Ok();
  }
  if (Status appended = journal_->Append(record); !appended.ok()) {
    obs::EventLog::Global().Log(
        obs::LogLevel::kError, "serve.journal", "journal append failed",
        {{"path", options_.journal_path},
         {"record", record.verb},
         {"error", appended.message()}});
    recorder_->Record("journal", detail, /*ok=*/false);
    NoteJournalFailure();
    return Status::Unavailable(StrFormat("cannot append to journal '%s'",
                                         options_.journal_path.c_str()));
  }
  NoteJournalSuccess();
  recorder_->Record("journal", detail);
  return Status::Ok();
}

}  // namespace serve
}  // namespace pandia
