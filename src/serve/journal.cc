#include "src/serve/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/crc32c.h"
#include "src/util/strings.h"

namespace pandia {
namespace serve {
namespace {

constexpr const char kMagicV1[] = "pandia-journal v1";
constexpr const char kMagicV2[] = "pandia-journal v2";

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Histogram& AppendLatency() {
  static obs::Histogram& histogram = obs::MetricsRegistry::Global().histogram(
      "serve.journal.append_latency_us", obs::ExponentialBounds(1, 2, 20));
  return histogram;
}
obs::Histogram& FsyncLatency() {
  static obs::Histogram& histogram = obs::MetricsRegistry::Global().histogram(
      "serve.journal.fsync_latency_us", obs::ExponentialBounds(1, 2, 20));
  return histogram;
}
obs::Counter& BytesCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("serve.journal.bytes");
  return counter;
}
obs::Counter& CompactionsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("serve.journal.compactions");
  return counter;
}
obs::Counter& ReclaimedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().counter(
      "serve.journal.compaction_bytes_reclaimed");
  return counter;
}
obs::Counter& TornTailsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("serve.journal.torn_tails");
  return counter;
}

Status ErrnoStatus(const char* what, const std::string& path) {
  return Status::Unavailable(
      StrFormat("%s '%s': %s", what, path.c_str(), std::strerror(errno)));
}

// The scripted crash the soak harness arms via PANDIA_JOURNAL_CRASH_AT
// (test-only; see journal.h). _Exit skips atexit/destructors — the whole
// point is to die as abruptly as kill -9 would, mid-I/O.
[[noreturn]] void CrashNow() { std::_Exit(137); }

// Reads the whole file (binary). A journal comfortably fits in memory: the
// service compacts it long before size becomes interesting.
StatusOr<std::string> ReadAll(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return ErrnoStatus("cannot read journal", path);
  }
  std::string text;
  char chunk[65536];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    text.append(chunk, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return ErrnoStatus("cannot read journal", path);
  }
  return text;
}

// Splits a v2 record line into its frame fields. Returns false (with a
// reason) on any framing defect; the caller decides whether that means a
// torn tail or corruption based on the line's position.
struct Frame {
  uint64_t seq = 0;
  uint32_t crc = 0;
  uint64_t len = 0;
  std::string_view payload;
};

bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 19) {
    return false;
  }
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

// `could_be_tear` reports whether the defect can be produced by a
// sequential write cut short: frame fields missing from the end, or a
// payload shorter than its declared length. Defects a tear cannot cause —
// malformed digits with all fields present (a tear would have removed the
// later fields first), a payload longer than declared, a checksum mismatch
// over a full-length payload (a tear only removes a suffix, it cannot
// alter bytes) — mean bit-rot or a writer bug even on the final line.
bool ParseFrame(std::string_view line, Frame* frame, std::string* reason,
                bool* could_be_tear) {
  *could_be_tear = false;
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  const size_t sp3 = sp2 == std::string_view::npos ? sp2 : line.find(' ', sp2 + 1);
  if (sp3 == std::string_view::npos) {
    *reason = "record is not 'seq crc len payload'";
    *could_be_tear = true;
    return false;
  }
  if (!ParseUint(line.substr(0, sp1), &frame->seq)) {
    *reason = "bad sequence number";
    return false;
  }
  const std::string_view crc_text = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (crc_text.size() != 8) {
    *reason = "checksum is not 8 hex digits";
    return false;
  }
  uint32_t crc = 0;
  for (const char c : crc_text) {
    uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      *reason = "checksum is not 8 hex digits";
      return false;
    }
    crc = crc * 16 + digit;
  }
  frame->crc = crc;
  if (!ParseUint(line.substr(sp2 + 1, sp3 - sp2 - 1), &frame->len)) {
    *reason = "bad payload length";
    return false;
  }
  frame->payload = line.substr(sp3 + 1);
  if (frame->payload.size() != frame->len) {
    *reason = StrFormat("payload is %zu bytes but the frame declares %llu",
                        frame->payload.size(),
                        static_cast<unsigned long long>(frame->len));
    *could_be_tear = frame->payload.size() < frame->len;
    return false;
  }
  if (Crc32c(frame->payload) != frame->crc) {
    *reason = StrFormat("checksum mismatch (stored %08x, computed %08x)",
                        frame->crc, Crc32c(frame->payload));
    return false;
  }
  return true;
}

// Formats one framed record line (no trailing newline).
std::string FormatFrame(uint64_t seq, const std::string& payload) {
  return StrFormat("%llu %08x %zu %s", static_cast<unsigned long long>(seq),
                   Crc32c(payload), payload.size(), payload.c_str());
}

// True when a torn final line looks like the start of a framed SNAPSHOT
// record — the one tear recovery must refuse (see journal.h).
bool LooksLikeTornSnapshot(std::string_view line) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return false;
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return false;
  }
  const size_t sp3 = line.find(' ', sp2 + 1);
  if (sp3 == std::string_view::npos) {
    return false;
  }
  const std::string_view payload = line.substr(sp3 + 1);
  return payload.rfind("SNAPSHOT", 0) == 0;
}

}  // namespace

std::string SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kNone:
      return "none";
    case SyncPolicy::kInterval:
      return "interval";
    case SyncPolicy::kEveryRecord:
      return "every-record";
  }
  return "interval";
}

StatusOr<SyncPolicy> SyncPolicyFromName(const std::string& name) {
  if (name == "none") {
    return SyncPolicy::kNone;
  }
  if (name == "interval") {
    return SyncPolicy::kInterval;
  }
  if (name == "every-record") {
    return SyncPolicy::kEveryRecord;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown sync policy '%s' (want none, interval, or every-record)",
      name.c_str()));
}

Journal::Journal(std::string path, JournalOptions options)
    : path_(std::move(path)), options_(options) {
  // Test hook: PANDIA_JOURNAL_CRASH_AT = "append:N" (die mid-write of the
  // Nth append after open) | "compact-tmp" (die after the tmp snapshot is
  // durable, before the rename) | "compact-rename" (die right after the
  // rename). Parsed per Journal so a soak child armed via its environment
  // crashes exactly once, at a seeded point.
  if (const char* spec = std::getenv("PANDIA_JOURNAL_CRASH_AT")) {
    const std::string text(spec);
    if (text.rfind("append:", 0) == 0) {
      uint64_t n = 0;
      if (ParseUint(std::string_view(text).substr(7), &n) && n > 0) {
        crash_stage_ = "append";
        crash_appends_left_ = static_cast<int>(n);
      }
    } else if (text == "compact-tmp" || text == "compact-rename") {
      crash_stage_ = text;
    }
  }
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      options_(other.options_),
      file_(std::exchange(other.file_, nullptr)),
      recovery_(std::move(other.recovery_)),
      version_(other.version_),
      next_seq_(other.next_seq_),
      record_count_(other.record_count_),
      records_since_snapshot_(other.records_since_snapshot_),
      size_bytes_(other.size_bytes_),
      records_since_sync_(other.records_since_sync_),
      dirty_(other.dirty_),
      crash_appends_left_(other.crash_appends_left_),
      crash_stage_(std::move(other.crash_stage_)) {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    options_ = other.options_;
    file_ = std::exchange(other.file_, nullptr);
    recovery_ = std::move(other.recovery_);
    version_ = other.version_;
    next_seq_ = other.next_seq_;
    record_count_ = other.record_count_;
    records_since_snapshot_ = other.records_since_snapshot_;
    size_bytes_ = other.size_bytes_;
    records_since_sync_ = other.records_since_sync_;
    dirty_ = other.dirty_;
    crash_appends_left_ = other.crash_appends_left_;
    crash_stage_ = std::move(other.crash_stage_);
  }
  return *this;
}

Journal::~Journal() { Close(); }

void Journal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

StatusOr<Journal> Journal::Open(std::string path, JournalOptions options) {
  Journal journal(std::move(path), options);
  // A crash mid-compaction can leave <path>.tmp behind; it was never
  // renamed, so it is dead weight from an aborted rewrite.
  std::remove((journal.path_ + ".tmp").c_str());

  bool exists = false;
  {
    std::FILE* probe = std::fopen(journal.path_.c_str(), "rb");
    if (probe != nullptr) {
      exists = true;
      std::fclose(probe);
    }
  }
  if (!exists) {
    journal.file_ = std::fopen(journal.path_.c_str(), "wb");
    if (journal.file_ == nullptr) {
      return ErrnoStatus("cannot create journal", journal.path_);
    }
    if (std::fprintf(journal.file_, "%s\n", kMagicV2) < 0 ||
        std::fflush(journal.file_) != 0) {
      return ErrnoStatus("cannot write journal header", journal.path_);
    }
    journal.size_bytes_ = std::strlen(kMagicV2) + 1;
    return journal;
  }

  StatusOr<std::string> read = ReadAll(journal.path_);
  if (!read.ok()) {
    return read.status();
  }
  const std::string& text = *read;

  uint64_t keep_bytes = text.size();  // truncate the file past this offset
  if (!text.empty()) {
    const size_t header_end = text.find('\n');
    if (header_end == std::string::npos) {
      // The header line itself is torn (crash between creating the file and
      // flushing the magic). Only a recognizable magic prefix is forgiven;
      // anything else is not a journal.
      if (std::string_view(kMagicV2).rfind(text, 0) == 0 ||
          std::string_view(kMagicV1).rfind(text, 0) == 0) {
        journal.recovery_.truncated_torn_tail = true;
        journal.recovery_.truncated_bytes = text.size();
        keep_bytes = 0;
      } else {
        return Status::DataLoss(StrFormat("journal '%s' does not start with '%s'",
                                          journal.path_.c_str(), kMagicV2));
      }
    } else {
      const std::string_view header(text.data(), header_end);
      if (header == kMagicV1) {
        journal.version_ = 1;
      } else if (header != kMagicV2) {
        return Status::DataLoss(StrFormat("journal '%s' does not start with '%s'",
                                          journal.path_.c_str(), kMagicV2));
      }
      journal.recovery_.version = journal.version_;

      // Walk the record lines. `pos` is the byte offset of the current
      // line's start — the truncation point if that line turns out torn.
      size_t pos = header_end + 1;
      size_t line_number = 1;  // the header was line 1
      uint64_t expected_seq = 1;
      while (pos < text.size()) {
        const size_t newline = text.find('\n', pos);
        const bool terminated = newline != std::string::npos;
        const size_t end = terminated ? newline : text.size();
        const std::string_view line(text.data() + pos, end - pos);
        ++line_number;
        const bool final_line = !terminated || end + 1 >= text.size();

        if (line.empty()) {
          if (final_line) {
            break;  // trailing newline artifacts are harmless
          }
          return Status::DataLoss(StrFormat("journal line %zu: empty record",
                                            line_number));
        }

        std::string reason;
        bool good = false;
        bool could_be_tear = false;
        Frame frame;
        wire::Request request;
        if (journal.version_ == 1) {
          // v1: raw request lines, no framing to verify. Parse errors are
          // corruption wherever they occur — v1 predates torn-tail
          // recovery, and silently dropping a record would change replay.
          StatusOr<wire::Request> parsed = wire::ParseRequest(line);
          if (!parsed.ok()) {
            return Status::DataLoss(StrFormat("journal line %zu: %s", line_number,
                                              parsed.status().message().c_str()));
          }
          request = *std::move(parsed);
          good = true;
        } else if (ParseFrame(line, &frame, &reason, &could_be_tear)) {
          if (journal.recovery_.records.empty()) {
            // Sequence numbers continue across compaction, so a compacted
            // journal legitimately starts above 1: the first record
            // anchors the expected sequence for the rest of the walk.
            expected_seq = frame.seq;
          }
          if (frame.seq != expected_seq) {
            reason = StrFormat("sequence %llu where %llu was expected",
                               static_cast<unsigned long long>(frame.seq),
                               static_cast<unsigned long long>(expected_seq));
          } else {
            StatusOr<wire::Request> parsed = wire::ParseRequest(frame.payload);
            if (!parsed.ok()) {
              // The checksum passed, so these are exactly the bytes the
              // writer framed: a malformed payload is writer corruption,
              // never a tear.
              return Status::DataLoss(StrFormat(
                  "journal line %zu: %s", line_number,
                  parsed.status().message().c_str()));
            }
            request = *std::move(parsed);
            good = true;
          }
        }

        if (!good && journal.version_ == 2) {
          // Only a tear signature on an unterminated final line is
          // recoverable. A terminated defective record (the newline proves
          // the whole line landed), a full-length payload with a CRC
          // mismatch, or a checksum-valid record with the wrong sequence
          // number cannot come from a write cut short — that is bit-rot or
          // a writer bug, refused like mid-file corruption (journal.h).
          if (terminated || !could_be_tear) {
            return Status::DataLoss(StrFormat("journal line %zu: %s",
                                              line_number, reason.c_str()));
          }
          if (LooksLikeTornSnapshot(line)) {
            // A snapshot only reaches the journal via fsync-then-rename;
            // a torn one means that contract broke, and truncating it
            // would silently drop the entire compacted history.
            return Status::DataLoss(StrFormat(
                "journal line %zu: snapshot record is truncated; refusing "
                "to recover (compaction atomicity was violated)",
                line_number));
          }
          journal.recovery_.truncated_torn_tail = true;
          journal.recovery_.truncated_bytes = text.size() - pos;
          keep_bytes = pos;
          break;
        }

        if (!terminated) {
          // A complete, verified record missing only its newline: the tear
          // took the separator but not the data. Keep the bytes? No —
          // appending the next record would glue two records onto one
          // line. Truncate it like any other tear (it was never
          // acknowledged with a full write).
          if (journal.version_ == 2) {
            if (LooksLikeTornSnapshot(line)) {
              return Status::DataLoss(StrFormat(
                  "journal line %zu: snapshot record is truncated; refusing "
                  "to recover (compaction atomicity was violated)",
                  line_number));
            }
            journal.recovery_.truncated_torn_tail = true;
            journal.recovery_.truncated_bytes = text.size() - pos;
            keep_bytes = pos;
            break;
          }
          // v1 tolerated an unterminated final line; keep replaying it.
        }

        journal.recovery_.records.push_back(
            JournalRecord{std::move(request), line_number});
        if (journal.version_ == 2) {
          ++expected_seq;
        }
        if (!terminated) {
          break;
        }
        pos = newline + 1;
      }
      journal.next_seq_ =
          journal.version_ == 2
              ? expected_seq
              : static_cast<uint64_t>(journal.recovery_.records.size()) + 1;
    }
  }

  if (journal.recovery_.truncated_torn_tail) {
    if (::truncate(journal.path_.c_str(), static_cast<off_t>(keep_bytes)) != 0) {
      return ErrnoStatus("cannot truncate torn journal tail", journal.path_);
    }
    TornTailsCounter().Increment();
  }
  journal.size_bytes_ = keep_bytes;
  journal.record_count_ = journal.recovery_.records.size();
  journal.records_since_snapshot_ = journal.record_count_;
  if (!journal.recovery_.records.empty() &&
      journal.recovery_.records.front().request.verb == "SNAPSHOT") {
    journal.records_since_snapshot_ = journal.record_count_ - 1;
  }

  if (keep_bytes == 0) {
    // Nothing (or only a torn header) survived: re-initialize as fresh v2.
    journal.file_ = std::fopen(journal.path_.c_str(), "wb");
    if (journal.file_ == nullptr) {
      return ErrnoStatus("cannot open journal for appending", journal.path_);
    }
    if (std::fprintf(journal.file_, "%s\n", kMagicV2) < 0 ||
        std::fflush(journal.file_) != 0) {
      return ErrnoStatus("cannot write journal header", journal.path_);
    }
    journal.version_ = 2;
    journal.size_bytes_ = std::strlen(kMagicV2) + 1;
    journal.next_seq_ = 1;
    return journal;
  }

  journal.file_ = std::fopen(journal.path_.c_str(), "ab");
  if (journal.file_ == nullptr) {
    return ErrnoStatus("cannot open journal for appending", journal.path_);
  }
  return journal;
}

Status Journal::FsyncNow() {
  const int64_t start_ns = NowNs();
  if (::fsync(::fileno(file_)) != 0) {
    return ErrnoStatus("cannot fsync journal", path_);
  }
  FsyncLatency().Observe(static_cast<double>(NowNs() - start_ns) / 1000.0);
  records_since_sync_ = 0;
  return Status::Ok();
}

// A failed append can leave partial — or complete but unacknowledged —
// record bytes in the file and in the stdio buffer while the in-memory
// counters roll back; writing after them would glue the next record onto a
// mid-line fragment (mid-file corruption on the next recovery) or duplicate
// a sequence number. Discard the stream (dropping its buffer), cut the file
// back to the last acknowledged record, and reopen. Each step can itself
// fail on a misbehaving disk: dirty_ records whether the tail is known
// good, and Append retries the restore before touching a dirty file.
void Journal::RestoreTail() {
  Close();
  dirty_ = ::truncate(path_.c_str(), static_cast<off_t>(size_bytes_)) != 0;
  if (!dirty_) {
    file_ = std::fopen(path_.c_str(), "ab");
    dirty_ = file_ == nullptr;
  }
}

Status Journal::Append(const wire::Request& record) {
  if (version_ == 1) {
    return Status::FailedPrecondition(StrFormat(
        "journal '%s' is v1 (read-only); compact it to v2 before appending",
        path_.c_str()));
  }
  if (dirty_) {
    RestoreTail();
    if (dirty_) {
      return Status::Unavailable(StrFormat(
          "journal '%s' holds an unrepaired tail from a failed append",
          path_.c_str()));
    }
  }
  const std::string payload = wire::FormatRequest(record);
  const std::string line = FormatFrame(next_seq_, payload) + "\n";

  bool inject_failure = false;
  if (options_.fail_next_appends > 0) {
    if (options_.fail_after_appends > 0) {
      --options_.fail_after_appends;
    } else {
      --options_.fail_next_appends;
      inject_failure = true;
    }
  }
  if (inject_failure) {
    // The injected fault mimics a disk that accepted part of the record
    // before giving out: half the line lands, then the same repair a real
    // failure takes must erase it.
    std::fwrite(line.data(), 1, line.size() / 2, file_);
    (void)std::fflush(file_);
    RestoreTail();
    return Status::Unavailable(
        StrFormat("cannot append to journal '%s' (injected failure)",
                  path_.c_str()));
  }

  if (crash_stage_ == "append" && crash_appends_left_ > 0 &&
      --crash_appends_left_ == 0) {
    // Scripted torn write: flush half the record into the file, then die
    // as abruptly as a power cut. Recovery must truncate exactly this.
    std::fwrite(line.data(), 1, line.size() / 2, file_);
    std::fflush(file_);
    CrashNow();
  }

  const int64_t start_ns = NowNs();
  Status appended = Status::Ok();
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    appended = ErrnoStatus("cannot append to journal", path_);
  } else {
    switch (options_.sync) {
      case SyncPolicy::kNone:
        break;
      case SyncPolicy::kEveryRecord:
        appended = FsyncNow();
        break;
      case SyncPolicy::kInterval:
        if (++records_since_sync_ >= options_.sync_interval_records) {
          appended = FsyncNow();
        }
        break;
    }
  }
  if (!appended.ok()) {
    // The record is unacknowledged but its bytes (some or all, fsync
    // failure included) may have reached the file; restore the tail so the
    // stream and the counters agree again.
    RestoreTail();
    return appended;
  }
  AppendLatency().Observe(static_cast<double>(NowNs() - start_ns) / 1000.0);
  BytesCounter().Increment(line.size());
  ++next_seq_;
  ++record_count_;
  ++records_since_snapshot_;
  size_bytes_ += line.size();
  return Status::Ok();
}

Status Journal::Compact(const wire::Request& snapshot) {
  const std::string tmp_path = path_ + ".tmp";
  const std::string payload = wire::FormatRequest(snapshot);
  const uint64_t snapshot_seq = next_seq_;
  const std::string line = FormatFrame(snapshot_seq, payload) + "\n";
  const uint64_t old_bytes = size_bytes_;

  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) {
    return ErrnoStatus("cannot create compaction tmp", tmp_path);
  }
  const bool wrote = std::fprintf(tmp, "%s\n", kMagicV2) >= 0 &&
                     std::fwrite(line.data(), 1, line.size(), tmp) == line.size() &&
                     std::fflush(tmp) == 0 && ::fsync(::fileno(tmp)) == 0;
  std::fclose(tmp);
  if (!wrote) {
    const Status status = ErrnoStatus("cannot write compaction tmp", tmp_path);
    std::remove(tmp_path.c_str());
    return status;
  }
  if (crash_stage_ == "compact-tmp") {
    // The tmp snapshot is durable but the journal still points at the old
    // file: recovery must find the complete old journal.
    CrashNow();
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    const Status status = ErrnoStatus("cannot rename compaction tmp over", path_);
    std::remove(tmp_path.c_str());
    return status;
  }
  if (crash_stage_ == "compact-rename") {
    // The rename landed: recovery must find exactly the new snapshot.
    CrashNow();
  }
  // Make the rename itself durable: fsync the containing directory (best
  // effort — some filesystems refuse directory fsync, and the rename is
  // already atomic for the crash-consistency argument).
  {
    const size_t slash = path_.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path_.substr(0, slash + 1);
    const int dir_fd = ::open(dir.c_str(), O_RDONLY);
    if (dir_fd >= 0) {
      (void)::fsync(dir_fd);
      ::close(dir_fd);
    }
  }
  // The old stream now writes to an unlinked inode; reopen onto the new
  // journal. The rename landed, so the counters describe the new file even
  // if the reopen fails — in that case dirty_ makes the next Append retry
  // the reopen (via RestoreTail) instead of writing through a dead stream.
  Close();
  version_ = 2;
  next_seq_ = snapshot_seq + 1;
  record_count_ = 1;
  records_since_snapshot_ = 0;
  records_since_sync_ = 0;
  size_bytes_ = std::strlen(kMagicV2) + 1 + line.size();
  CompactionsCounter().Increment();
  if (old_bytes > size_bytes_) {
    ReclaimedCounter().Increment(old_bytes - size_bytes_);
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    dirty_ = true;
    return ErrnoStatus("cannot reopen journal after compaction", path_);
  }
  dirty_ = false;
  return Status::Ok();
}

Status Journal::Sync() {
  if (file_ == nullptr || dirty_) {
    return Status::Unavailable(StrFormat(
        "journal '%s' holds an unrepaired tail from a failed append",
        path_.c_str()));
  }
  if (std::fflush(file_) != 0) {
    return ErrnoStatus("cannot flush journal", path_);
  }
  return FsyncNow();
}

}  // namespace serve
}  // namespace pandia
