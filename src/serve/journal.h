// The placement service's durable mutation journal — version 2.
//
// A Journal owns every byte of file I/O for one journal path; the service
// (src/serve/service.h) never touches the file directly (the pandia_lint
// rule `no-raw-journal-io` enforces this). The file is line-oriented text:
//
//   journal  = magic LF *( record LF )
//   magic    = "pandia-journal v2"
//   record   = seq SP crc SP len SP payload
//   seq      = 1*DIGIT          ; starts at 1, +1 per record, survives
//                               ; compaction (the snapshot keeps counting)
//   crc      = 8HEXDIG          ; CRC32C of the payload bytes (lowercase)
//   len      = 1*DIGIT          ; payload length in bytes
//   payload  = wire-v1 request line (src/serialize/wire.h)
//
// Payloads are wire request lines, whose escaping already bans raw
// newlines, so the framing is text-safe: the journal remains a grep-able
// log while every record is independently verifiable.
//
// Recovery distinguishes two failure shapes:
//
//   * A torn FINAL record — an UNTERMINATED last line whose defect a
//     sequential write cut short can actually produce (frame fields
//     missing from the end, payload shorter than declared, or only the
//     newline lost) — is truncated away and replay continues; the caller
//     is told via JournalRecovery so it can log the event. Under the
//     kill -9 crash model every acknowledged append was fflush()ed first,
//     so a torn tail can only be an unacknowledged mutation — dropping it
//     is correct, not lossy.
//   * Everything else is corruption: Open refuses with a DataLoss status
//     naming the exact line. That covers any defect BEFORE the final
//     record (silently skipping it would replay a state the daemon never
//     held), but also tail defects a tear cannot cause: a terminated
//     final record with any defect (the newline proves the whole line
//     landed), a CRC mismatch over a full-length payload (a tear only
//     removes a suffix, it cannot alter bytes), or a wrong sequence
//     number on a checksum-valid record (a writer bug, possibly on an
//     acknowledged record).
//
// One exception: a torn SNAPSHOT record is refused even at the tail.
// Snapshots are only written via fsync-then-rename compaction, so a torn
// snapshot means the atomicity contract was violated and truncating would
// silently drop the entire pre-compaction history.
//
// Sync policy: appends always fflush() (page-cache durability — survives
// kill -9); fsync() cadence is configurable: `none` (rely on the kernel),
// `interval` (every N records, the default: bounded loss on power failure
// at a fraction of every-record's latency), `every-record` (fsync before
// acknowledging each mutation).
//
// Compaction rewrites the journal as one SNAPSHOT record: write header +
// snapshot to `<path>.tmp`, fflush+fsync, rename(2) over the journal, fsync
// the directory. A crash at any point leaves either the complete old or the
// complete new journal — never a hybrid — because rename is atomic and the
// tmp is durable before the rename. Stale `<path>.tmp` files from crashed
// compactions are removed on Open.
//
// v1 journals ("pandia-journal v1": raw request lines, no checksums) are
// recovered read-only for backward compatibility; the owner compacts to v2
// before the first new append (needs_upgrade()).
//
// A failed append (real or injected) may leave partial — or even
// complete but unacknowledged — record bytes in the file. Append repairs
// that immediately: it discards the stream's buffer, truncates the file
// back to the last acknowledged record, and reopens, so the next write
// never glues onto a dirty tail. If the repair itself fails (the disk is
// already misbehaving) the journal refuses further appends until a retry
// of the repair succeeds.
//
// Test hooks (never set in production): PANDIA_JOURNAL_CRASH_AT kills the
// process at a scripted point mid-append or mid-compaction (see
// journal.cc), and InjectAppendFailures makes the next N appends fail
// after spilling half the record into the file — exercising exactly the
// partial-write repair above — which is how the degraded-mode and soak
// tests drive torn writes and disk faults deterministically.
#ifndef PANDIA_SRC_SERVE_JOURNAL_H_
#define PANDIA_SRC_SERVE_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/serialize/wire.h"
#include "src/util/status.h"

namespace pandia {
namespace serve {

enum class SyncPolicy {
  kNone,         // fflush only; fsync left to the kernel
  kInterval,     // fflush every record, fsync every sync_interval_records
  kEveryRecord,  // fflush + fsync before acknowledging every record
};

std::string SyncPolicyName(SyncPolicy policy);
StatusOr<SyncPolicy> SyncPolicyFromName(const std::string& name);

struct JournalOptions {
  SyncPolicy sync = SyncPolicy::kInterval;
  // fsync cadence under SyncPolicy::kInterval (records per fsync).
  int sync_interval_records = 32;
  // Test-only: fail the next `fail_next_appends` appends after letting
  // `fail_after_appends` succeed first. An injected failure spills half
  // the record into the file before failing, like a partial fwrite on a
  // full disk, so it exercises the same tail repair a real failure takes
  // (see PlacementService degraded mode).
  int fail_next_appends = 0;
  int fail_after_appends = 0;
};

// One recovered record with its 1-based line number in the file (line 1 is
// the magic), so replay errors can name the exact line.
struct JournalRecord {
  wire::Request request;
  size_t line = 0;
};

// What Open() found in an existing file.
struct JournalRecovery {
  int version = 2;  // header version (1: legacy raw-line journal)
  std::vector<JournalRecord> records;
  // A torn final record was truncated away (v2 only). The byte count is
  // what was dropped; the caller should log the event.
  bool truncated_torn_tail = false;
  uint64_t truncated_bytes = 0;
};

// A durable record log. Not internally synchronized: the owner serializes
// access (the service holds its Journal under the same mutex as the rack).
class Journal {
 public:
  // Opens (creating if absent) and recovers the journal at `path`. Refuses
  // mid-file corruption with DataLoss naming the line; truncates a torn
  // final record and reports it in recovery().
  static StatusOr<Journal> Open(std::string path, JournalOptions options);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  const std::string& path() const { return path_; }
  const JournalRecovery& recovery() const { return recovery_; }
  // True for a recovered v1 journal: call Compact() (rewriting the file as
  // a v2 snapshot) before the first Append.
  bool needs_upgrade() const { return version_ == 1; }
  // Sequence number the next appended record will carry.
  uint64_t next_seq() const { return next_seq_; }
  // Records currently in the file (snapshot included, header excluded).
  uint64_t record_count() const { return record_count_; }
  // Records appended since the last snapshot (or since the journal began,
  // if it has never been compacted) — the compaction-trigger denominator.
  uint64_t records_since_snapshot() const { return records_since_snapshot_; }
  uint64_t size_bytes() const { return size_bytes_; }

  // Appends one record (fails on a v1 journal until it is upgraded). On
  // success the record is at least page-cache durable (fflush), fsync'd per
  // the sync policy. A failed append leaves the in-memory counters
  // unchanged AND restores the file to the last acknowledged record (see
  // the tail-repair note above), so a later append continues cleanly.
  [[nodiscard]] Status Append(const wire::Request& record);

  // Atomically replaces the journal with header + `snapshot` (one record
  // carrying the full state; the caller serializes it). The snapshot takes
  // the next sequence number, so seq stays monotonic across compactions.
  [[nodiscard]] Status Compact(const wire::Request& snapshot);

  // Forces an fsync now (e.g. before a clean shutdown).
  [[nodiscard]] Status Sync();

  // Test-only: fail the next `n` appends, after letting `after` appends
  // succeed first (see JournalOptions).
  void InjectAppendFailures(int n, int after = 0) {
    options_.fail_next_appends = n;
    options_.fail_after_appends = after;
  }

 private:
  Journal(std::string path, JournalOptions options);

  void Close();
  Status FsyncNow();
  void RestoreTail();

  std::string path_;
  JournalOptions options_;
  std::FILE* file_ = nullptr;
  JournalRecovery recovery_;
  int version_ = 2;
  uint64_t next_seq_ = 1;
  uint64_t record_count_ = 0;
  uint64_t records_since_snapshot_ = 0;
  uint64_t size_bytes_ = 0;
  int records_since_sync_ = 0;
  // A failed append left bytes past the acknowledged tail and the repair
  // (RestoreTail) has not yet succeeded; appends retry it before writing.
  bool dirty_ = false;
  // PANDIA_JOURNAL_CRASH_AT state: appends (and compaction stages) left
  // before the scripted _Exit. Negative: hook disarmed.
  int crash_appends_left_ = -1;
  std::string crash_stage_;
};

}  // namespace serve
}  // namespace pandia

#endif  // PANDIA_SRC_SERVE_JOURNAL_H_
