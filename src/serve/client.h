// Client side of the wire-v1 protocol: connect/retry/deadline handling,
// the HELLO handshake, request framing, and response-block parsing — the
// logic every tool used to hand-roll on top of raw sockets, now in one
// place. pandia_serve_client, pandia_top, and pandia_loadgen all speak
// through this class.
//
// Usage:
//
//   StatusOr<Client> client = Client::Connect(socket_path, options);
//   StatusOr<wire::Response> status = client->Call("STATUS");
//   std::vector<std::string> lines = {...};   // pipelined batch
//   StatusOr<std::vector<wire::Response>> all = client->CallMany(lines);
//
// Connect() performs the HELLO handshake by default: the server advertises
// its protocol version and capability list (e.g. "fleet", "compact"), which
// the client exposes via protocol_version() / has_capability(). A pre-HELLO
// server answers HELLO with a structured `err invalid-argument`; the client
// treats that as protocol 1 with no advertised capabilities and carries on —
// the handshake never breaks compatibility. Transport failures during the
// handshake do fail Connect().
//
// Calls are synchronous but pipelined: CallMany() writes every request line
// before reading any response, so a batch costs one round trip. The lower
// level Send()/Receive()/HalfClose()/DrainToEof() primitives are exposed for
// tools that stream (pandia_loadgen's open loop) or that want the one-shot
// write-then-EOF exchange (SocketExchange below).
//
// Thread safety: a Client is a plain connection handle — external
// synchronization required, like any socket.
#ifndef PANDIA_SRC_SERVE_CLIENT_H_
#define PANDIA_SRC_SERVE_CLIENT_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/serialize/wire.h"
#include "src/util/status.h"

namespace pandia {
namespace serve {

struct ClientOptions {
  // Send/receive deadline per socket operation in milliseconds; negative
  // means no deadline. 0 is clamped to 1 ms (a zero timeval means "no
  // timeout" to the kernel — the opposite of the tightest deadline).
  int timeout_ms = -1;
  // Extra connect attempts when the daemon socket refuses or is absent
  // (daemon restarting). Other connect errors fail immediately.
  int retries = 0;
  // First retry backoff in milliseconds; doubles per attempt.
  int backoff_initial_ms = 50;
  // Send HELLO on connect and record the server's protocol version and
  // capabilities. Disable for one-shot exchanges with EOF framing.
  bool handshake = true;
};

class Client {
 public:
  static StatusOr<Client> Connect(const std::string& path,
                                  const ClientOptions& options = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // Handshake results. Without a handshake (or against a pre-HELLO server)
  // the protocol version is wire::kProtocolVersion and capabilities empty.
  int protocol_version() const { return protocol_version_; }
  const std::vector<std::string>& capabilities() const { return capabilities_; }
  bool has_capability(std::string_view name) const;

  const std::string& path() const { return path_; }

  // One request line (no trailing newline) -> one parsed response block.
  StatusOr<wire::Response> Call(const std::string& line);

  // Pipelined batch: writes every request line, then reads one response
  // block per line. One round trip for the whole batch.
  StatusOr<std::vector<wire::Response>> CallMany(
      std::span<const std::string> lines);

  // Streaming primitives underneath Call/CallMany.
  Status Send(const std::string& text);       // raw bytes, as given
  StatusOr<wire::Response> Receive();         // one "."-framed block, parsed
  StatusOr<std::string> ReceiveRaw();         // same block, raw text
  Status HalfClose();                         // shutdown(SHUT_WR): done asking
  StatusOr<std::string> DrainToEof();         // everything until server EOF

 private:
  Client(int fd, std::string path, ClientOptions options)
      : fd_(fd), path_(std::move(path)), options_(options) {}

  // Reads one response block (through the final ".") into `lines`.
  Status ReadBlock(std::vector<std::string>* lines);
  // Pulls more bytes into buffer_; false on EOF.
  StatusOr<bool> FillBuffer();
  Status Handshake();

  int fd_ = -1;
  std::string path_;
  ClientOptions options_;
  std::string buffer_;  // received bytes not yet consumed by framing
  int protocol_version_ = wire::kProtocolVersion;
  std::vector<std::string> capabilities_;
};

// One-shot exchange with EOF framing, built on Client: connect, write
// `request_text` (which may hold many request lines), half-close, read until
// the daemon closes. Returns the raw concatenated response blocks. No
// handshake — the byte stream is exactly the responses to `request_text`.
struct ExchangeOptions {
  int timeout_ms = -1;
  int retries = 0;
  int backoff_initial_ms = 50;
};

StatusOr<std::string> SocketExchange(const std::string& path,
                                     const std::string& request_text,
                                     const ExchangeOptions& options = {});

}  // namespace serve
}  // namespace pandia

#endif  // PANDIA_SRC_SERVE_CLIENT_H_
