// The placement service — Pandia as a long-running daemon.
//
// PlacementService holds a rack::Rack as mutable online state and processes
// the wire-v1 request protocol (src/serialize/wire.h):
//
//   HELLO      handshake: protocol version + capability list, so clients
//              negotiate before speaking (serve::Client sends it on connect)
//   ADMIT      place a new job co-scheduled against the running jobs
//   DEPART     free a job; opportunistically re-place degraded neighbours
//   REBALANCE  bounded-migration global re-placement
//   COMPACT    rewrite the journal as one SNAPSHOT record (also automatic
//              when the live-record ratio drops; see ServiceOptions)
//   STATUS     deterministic state dump (per-job predicted speedup/slowdown,
//              bottleneck resource, placements)
//   METRICS    obs registry dump (format=expo selects the line-oriented
//              machine-readable exposition format)
//   TELEMETRY  per-job rack telemetry: predicted slowdown at admit, current
//              prediction, re-placements, co-runner event deltas
//   RECORDER   flight-recorder dump: the most recent requests and journal
//              appends with timestamps and outcomes
//   SHUTDOWN   acknowledge and stop the serving loop
//
// Telemetry: every request is counted and timed (serve.<verb>.latency_us
// histograms), journal appends are timed and sized, error and rollback
// paths log through obs::EventLog, and a per-service obs::FlightRecorder
// retains the recent request/journal history for the RECORDER verb.
//
// Every mutation is journaled through the durable checksummed Journal
// (src/serve/journal.h: per-record CRC32C framing, configurable fsync
// policy, snapshot + compaction, torn-tail recovery) so a restarted daemon
// replays its exact state: admissions embed the workload description text,
// so the journal is self-contained and replay needs no other files.
// Requests never abort the process — malformed input and infeasible
// placements surface as structured `err` replies.
//
// When journal appends fail persistently (a full or faulted disk), the
// service degrades to read-only instead of rolling back every mutation
// forever: mutating verbs return `err unavailable` while STATUS / METRICS /
// TELEMETRY / RECORDER keep serving, the `serve.degraded` gauge goes to 1,
// and each rejected mutation first probes the journal with a NOTE record so
// service recovers automatically the moment the disk does.
//
// The service itself is transport-agnostic: HandleLine() maps one request
// line to one response block. src/serve/socket.h supplies the stdin/stdout
// and Unix-domain-socket event loop the daemon binary runs.
//
// Thread safety: the service owns a mutex serializing every request against
// its mutable state (the rack, the journal stream, the shutdown flag), so
// Handle/HandleLine may be called concurrently from any number of transport
// threads. The contract is annotated for Clang thread-safety analysis; the
// rack::Rack itself is externally synchronized (it fans read-only probes
// out over worker threads inside one mutation, so an internal lock would be
// the wrong shape) and PANDIA_GUARDED_BY ties it to the service mutex.
#ifndef PANDIA_SRC_SERVE_SERVICE_H_
#define PANDIA_SRC_SERVE_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/rack/rack.h"
#include "src/serialize/wire.h"
#include "src/serve/handler.h"
#include "src/serve/journal.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace pandia {
namespace serve {

struct ServiceOptions {
  // Policy used by ADMIT requests that do not name one, and by the
  // rebalancer's candidate search.
  rack::Policy default_policy = rack::Policy::kBestSpeedup;
  // Solver options for the rack; prediction.common.jobs fans admission
  // probes out over worker threads, prediction.common.use_cache memoizes
  // per-machine joint predictions across requests.
  PredictionOptions prediction;
  // Durable mutation journal; empty disables journaling. When the file
  // already exists it is recovered and replayed before serving (restart
  // recovery); a v1 journal replays read-only and is rewritten as v2 on the
  // first mutation.
  std::string journal_path;
  // Journal durability knobs: sync policy, fsync cadence, and the test-only
  // injected-failure count (see src/serve/journal.h).
  JournalOptions journal;
  // Consecutive journal-append failures before the service stops rolling
  // back every mutation and enters read-only degraded mode.
  int degraded_failure_threshold = 3;
  // Automatic compaction fires once at least compact_min_records records
  // accumulated since the last snapshot AND resident jobs per
  // post-snapshot record (the live ratio) fell below compact_live_ratio —
  // i.e. most of the journal suffix is departed/moved history that a
  // snapshot would fold away.
  uint64_t compact_min_records = 1024;
  double compact_live_ratio = 0.5;
  // DEPART re-places a remaining neighbour when its best re-placement on
  // its machine improves its predicted speedup by more than this relative
  // margin; REBALANCE uses the same margin for cross-machine moves.
  double replace_margin = 0.02;
  // REBALANCE migration budget when the request does not set one.
  int default_max_migrations = 4;
};

class PlacementService : public RequestHandler {
 public:
  // Builds the service; replays options.journal_path if the file exists,
  // then reopens it for appending. Fails (instead of aborting) on an
  // unreadable or corrupt journal.
  static StatusOr<PlacementService> Create(std::vector<rack::RackMachine> machines,
                                           ServiceOptions options);

  // Moves take the dying object's guarded state without locking: both
  // objects must be externally quiescent during a move (standard move
  // contract), which the analysis cannot express.
  PlacementService(PlacementService&& other) noexcept
      PANDIA_NO_THREAD_SAFETY_ANALYSIS;
  PlacementService& operator=(PlacementService&& other) noexcept
      PANDIA_NO_THREAD_SAFETY_ANALYSIS;
  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;
  ~PlacementService() PANDIA_NO_THREAD_SAFETY_ANALYSIS;

  // Processes one request line end to end: parse, dispatch, journal any
  // mutation, serialize. The returned text is the complete response block
  // (newline-terminated lines ending with ".\n"). Never aborts. Safe to
  // call concurrently; requests are serialized on the service mutex.
  [[nodiscard]] std::string HandleLine(const std::string& line)
      PANDIA_EXCLUDES(mu_) override;

  // Structured form of HandleLine for in-process callers.
  [[nodiscard]] wire::Response Handle(const wire::Request& request)
      PANDIA_EXCLUDES(mu_);

  // True once a SHUTDOWN request was acknowledged; serving loops exit.
  bool shutdown_requested() const PANDIA_EXCLUDES(mu_) override;

  // Quiescent inspection only (tests, post-loop reporting): the caller must
  // guarantee no concurrent Handle/HandleLine while the reference is used,
  // which is why this opts out of the thread-safety analysis.
  const rack::Rack& rack() const PANDIA_NO_THREAD_SAFETY_ANALYSIS {
    return rack_;
  }

  // The service's flight recorder (internally synchronized; RECORDER serves
  // from it, tests inspect it directly).
  const obs::FlightRecorder& recorder() const { return *recorder_; }

  // Quiescent inspection of the journal (tests; may be null when journaling
  // is disabled). Same external-quiescence contract as rack().
  Journal* journal_for_test() PANDIA_NO_THREAD_SAFETY_ANALYSIS {
    return journal_.get();
  }

  // True while the service is in read-only degraded mode.
  bool degraded() const PANDIA_EXCLUDES(mu_);

 private:
  PlacementService(std::vector<rack::RackMachine> machines, ServiceOptions options);

  // Dispatch wraps DispatchVerb with the journal gates: the degraded-mode
  // probe and v1 upgrade before a mutation, the automatic-compaction check
  // after a successful one.
  wire::Response Dispatch(const wire::Request& request) PANDIA_REQUIRES(mu_);
  wire::Response DispatchVerb(const wire::Request& request)
      PANDIA_REQUIRES(mu_);
  wire::Response HandleAdmit(const wire::Request& request) PANDIA_REQUIRES(mu_);
  wire::Response HandleDepart(const wire::Request& request) PANDIA_REQUIRES(mu_);
  wire::Response HandleRebalance(const wire::Request& request)
      PANDIA_REQUIRES(mu_);
  wire::Response HandleCompact(const wire::Request& request)
      PANDIA_REQUIRES(mu_);
  wire::Response HandleHello(const wire::Request& request) const
      PANDIA_REQUIRES(mu_);
  wire::Response HandleStatus() const PANDIA_REQUIRES(mu_);
  wire::Response HandleMetrics(const wire::Request& request) const
      PANDIA_REQUIRES(mu_);
  wire::Response HandleTelemetry() const PANDIA_REQUIRES(mu_);
  wire::Response HandleRecorder(const wire::Request& request) const
      PANDIA_REQUIRES(mu_);

  // Re-places machine residents whose best re-placement beats the margin;
  // appends one journal record and one `moved =` payload line per move.
  Status ReplaceDegraded(int machine_index, std::vector<std::string>& payload)
      PANDIA_REQUIRES(mu_);

  // Applies one recovered journal record (ADMITTED / DEPARTED / MOVED) to
  // the rack; `line` names the journal line in error messages.
  Status ApplyRecord(const wire::Request& record, size_t line)
      PANDIA_REQUIRES(mu_);
  // Serializes the rack's SavedState as one SNAPSHOT record / restores it.
  wire::Request BuildSnapshot() const PANDIA_REQUIRES(mu_);
  Status RestoreSnapshot(const wire::Request& record, size_t line)
      PANDIA_REQUIRES(mu_);

  // Appends through the Journal with degraded-mode accounting: consecutive
  // failures past the threshold enter degraded mode, any success leaves it.
  Status AppendJournal(const wire::Request& record) PANDIA_REQUIRES(mu_);
  // Degraded-mode gate for mutating verbs: appends a NOTE probe record
  // (replay skips NOTEs); true restores normal service.
  bool ProbeJournal() PANDIA_REQUIRES(mu_);
  // Snapshots the rack into the journal (COMPACT verb, the automatic
  // trigger, and the v1-to-v2 upgrade all funnel through here).
  Status CompactJournal() PANDIA_REQUIRES(mu_);
  // Resident jobs per post-snapshot journal record, in [0, 1].
  double LiveRatio() const PANDIA_REQUIRES(mu_);
  void NoteJournalFailure() PANDIA_REQUIRES(mu_);
  void NoteJournalSuccess() PANDIA_REQUIRES(mu_);

  ServiceOptions options_;  // immutable after construction
  // Serializes every request against the mutable daemon state below.
  mutable util::Mutex mu_{"serve.service", util::kLockRankServeService};
  rack::Rack rack_ PANDIA_GUARDED_BY(mu_);
  std::unique_ptr<Journal> journal_ PANDIA_GUARDED_BY(mu_);  // null: disabled
  bool shutdown_ PANDIA_GUARDED_BY(mu_) = false;
  // Read-only degraded mode (persistent journal failure). `failures_` is
  // the consecutive-append-failure streak feeding the entry threshold.
  bool degraded_ PANDIA_GUARDED_BY(mu_) = false;
  int journal_failures_ PANDIA_GUARDED_BY(mu_) = 0;
  // Internally synchronized; heap-owned so the service stays movable.
  std::unique_ptr<obs::FlightRecorder> recorder_;
};

}  // namespace serve
}  // namespace pandia

#endif  // PANDIA_SRC_SERVE_SERVICE_H_
