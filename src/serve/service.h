// The placement service — Pandia as a long-running daemon.
//
// PlacementService holds a rack::Rack as mutable online state and processes
// the wire-v1 request protocol (src/serialize/wire.h):
//
//   ADMIT      place a new job co-scheduled against the running jobs
//   DEPART     free a job; opportunistically re-place degraded neighbours
//   REBALANCE  bounded-migration global re-placement
//   STATUS     deterministic state dump (per-job predicted speedup/slowdown,
//              bottleneck resource, placements)
//   METRICS    obs registry dump (format=expo selects the line-oriented
//              machine-readable exposition format)
//   TELEMETRY  per-job rack telemetry: predicted slowdown at admit, current
//              prediction, re-placements, co-runner event deltas
//   RECORDER   flight-recorder dump: the most recent requests and journal
//              appends with timestamps and outcomes
//   SHUTDOWN   acknowledge and stop the serving loop
//
// Telemetry: every request is counted and timed (serve.<verb>.latency_us
// histograms), journal appends are timed and sized, error and rollback
// paths log through obs::EventLog, and a per-service obs::FlightRecorder
// retains the recent request/journal history for the RECORDER verb.
//
// Every mutation is journaled (append-only, wire request framing) so a
// restarted daemon replays its exact state: admissions embed the workload
// description text, so the journal is self-contained and replay needs no
// other files. Requests never abort the process — malformed input and
// infeasible placements surface as structured `err` replies.
//
// The service itself is transport-agnostic: HandleLine() maps one request
// line to one response block. src/serve/socket.h supplies the stdin/stdout
// and Unix-domain-socket event loop the daemon binary runs.
//
// Thread safety: the service owns a mutex serializing every request against
// its mutable state (the rack, the journal stream, the shutdown flag), so
// Handle/HandleLine may be called concurrently from any number of transport
// threads. The contract is annotated for Clang thread-safety analysis; the
// rack::Rack itself is externally synchronized (it fans read-only probes
// out over worker threads inside one mutation, so an internal lock would be
// the wrong shape) and PANDIA_GUARDED_BY ties it to the service mutex.
#ifndef PANDIA_SRC_SERVE_SERVICE_H_
#define PANDIA_SRC_SERVE_SERVICE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/rack/rack.h"
#include "src/serialize/wire.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace pandia {
namespace serve {

struct ServiceOptions {
  // Policy used by ADMIT requests that do not name one, and by the
  // rebalancer's candidate search.
  rack::Policy default_policy = rack::Policy::kBestSpeedup;
  // Solver options for the rack; prediction.common.jobs fans admission
  // probes out over worker threads, prediction.common.use_cache memoizes
  // per-machine joint predictions across requests.
  PredictionOptions prediction;
  // Append-only mutation journal; empty disables journaling. When the file
  // already exists it is replayed before serving (restart recovery).
  std::string journal_path;
  // DEPART re-places a remaining neighbour when its best re-placement on
  // its machine improves its predicted speedup by more than this relative
  // margin; REBALANCE uses the same margin for cross-machine moves.
  double replace_margin = 0.02;
  // REBALANCE migration budget when the request does not set one.
  int default_max_migrations = 4;
};

class PlacementService {
 public:
  // Builds the service; replays options.journal_path if the file exists,
  // then reopens it for appending. Fails (instead of aborting) on an
  // unreadable or corrupt journal.
  static StatusOr<PlacementService> Create(std::vector<rack::RackMachine> machines,
                                           ServiceOptions options);

  // Moves take the dying object's guarded state without locking: both
  // objects must be externally quiescent during a move (standard move
  // contract), which the analysis cannot express.
  PlacementService(PlacementService&& other) noexcept
      PANDIA_NO_THREAD_SAFETY_ANALYSIS;
  PlacementService& operator=(PlacementService&& other) noexcept
      PANDIA_NO_THREAD_SAFETY_ANALYSIS;
  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;
  ~PlacementService() PANDIA_NO_THREAD_SAFETY_ANALYSIS;

  // Processes one request line end to end: parse, dispatch, journal any
  // mutation, serialize. The returned text is the complete response block
  // (newline-terminated lines ending with ".\n"). Never aborts. Safe to
  // call concurrently; requests are serialized on the service mutex.
  [[nodiscard]] std::string HandleLine(const std::string& line)
      PANDIA_EXCLUDES(mu_);

  // Structured form of HandleLine for in-process callers.
  [[nodiscard]] wire::Response Handle(const wire::Request& request)
      PANDIA_EXCLUDES(mu_);

  // True once a SHUTDOWN request was acknowledged; serving loops exit.
  bool shutdown_requested() const PANDIA_EXCLUDES(mu_);

  // Quiescent inspection only (tests, post-loop reporting): the caller must
  // guarantee no concurrent Handle/HandleLine while the reference is used,
  // which is why this opts out of the thread-safety analysis.
  const rack::Rack& rack() const PANDIA_NO_THREAD_SAFETY_ANALYSIS {
    return rack_;
  }

  // The service's flight recorder (internally synchronized; RECORDER serves
  // from it, tests inspect it directly).
  const obs::FlightRecorder& recorder() const { return *recorder_; }

 private:
  PlacementService(std::vector<rack::RackMachine> machines, ServiceOptions options);

  wire::Response Dispatch(const wire::Request& request) PANDIA_REQUIRES(mu_);
  wire::Response HandleAdmit(const wire::Request& request) PANDIA_REQUIRES(mu_);
  wire::Response HandleDepart(const wire::Request& request) PANDIA_REQUIRES(mu_);
  wire::Response HandleRebalance(const wire::Request& request)
      PANDIA_REQUIRES(mu_);
  wire::Response HandleStatus() const PANDIA_REQUIRES(mu_);
  wire::Response HandleMetrics(const wire::Request& request) const
      PANDIA_REQUIRES(mu_);
  wire::Response HandleTelemetry() const PANDIA_REQUIRES(mu_);
  wire::Response HandleRecorder(const wire::Request& request) const
      PANDIA_REQUIRES(mu_);

  // Re-places machine residents whose best re-placement beats the margin;
  // appends one journal record and one `moved =` payload line per move.
  Status ReplaceDegraded(int machine_index, std::vector<std::string>& payload)
      PANDIA_REQUIRES(mu_);

  // Replays journal text into the rack. `saw_magic_out` reports whether the
  // header line was present; a record-less headerless file (0 bytes) is a
  // fresh journal, not corruption, and Create() then writes the header.
  Status ReplayJournal(const std::string& text, bool* saw_magic_out)
      PANDIA_REQUIRES(mu_);
  Status AppendJournal(const wire::Request& record) PANDIA_REQUIRES(mu_);

  ServiceOptions options_;  // immutable after construction
  // Serializes every request against the mutable daemon state below.
  mutable util::Mutex mu_;
  rack::Rack rack_ PANDIA_GUARDED_BY(mu_);
  std::FILE* journal_ PANDIA_GUARDED_BY(mu_) = nullptr;  // null: disabled
  bool shutdown_ PANDIA_GUARDED_BY(mu_) = false;
  // Internally synchronized; heap-owned so the service stays movable.
  std::unique_ptr<obs::FlightRecorder> recorder_;
};

}  // namespace serve
}  // namespace pandia

#endif  // PANDIA_SRC_SERVE_SERVICE_H_
