// Fleet-scale serving: one daemon fronting N placement shards.
//
// FleetService implements the same RequestHandler contract as
// PlacementService, but owns N independent shards — each a full
// PlacementService with its own rack, journal (`<base>.shard<k>`), and
// flight recorder — and routes requests across them:
//
//   HELLO      shard 0's handshake with "fleet" added to the capability
//              list, plus `shards =` and `shard-policy =` rows
//   ADMIT      routed by the admission policy (rack::Fleet): consistent
//              hashing on the job name, or least-loaded. If the chosen
//              shard cannot place the job (full, or no matching machine
//              type), the next shard in the deterministic preference order
//              is tried; the response gains a `shard =` row naming the
//              shard that admitted.
//   DEPART     routed to the shard where the job is resident
//   REBALANCE  fanned out to every shard (migrations stay within a shard —
//              cross-shard migration would need to move journal ownership)
//   COMPACT    fanned out to every shard
//   STATUS     fleet header rows, then every shard's payload under a
//   TELEMETRY  `shard = k` delimiter row, shards in index order — the
//   RECORDER   aggregate is deterministic, so replaying every shard's
//              journal reproduces it byte for byte
//   METRICS    shard 0 only (the obs registry is process-global)
//   SHUTDOWN   every shard (each syncs its journal), one acknowledgement
//
// Determinism: routing reads only shard state (free threads, job counts,
// residency) that journal replay reconstructs exactly, and rack::Fleet
// breaks every tie deterministically — so a fleet rebuilt from its shards'
// journals routes, reports, and admits identically to the original.
//
// Thread safety: the fleet mutex serializes every request end to end, so
// cross-shard decisions (duplicate-name checks, load snapshots, routing)
// are atomic with the forwarded mutation. Shards are never touched
// concurrently through the fleet; direct shard access (tests) requires
// external quiescence, like PlacementService::rack().
#ifndef PANDIA_SRC_SERVE_FLEET_SERVICE_H_
#define PANDIA_SRC_SERVE_FLEET_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/rack/fleet.h"
#include "src/rack/rack.h"
#include "src/serialize/wire.h"
#include "src/serve/handler.h"
#include "src/serve/service.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace pandia {
namespace serve {

struct FleetOptions {
  // Number of placement shards; machines are dealt round-robin (machine i
  // goes to shard i % shards), so heterogeneous machine lists spread types
  // across shards.
  int shards = 2;
  // Admission routing policy (see rack::Fleet).
  rack::ShardPolicy shard_policy = rack::ShardPolicy::kConsistentHash;
  // Per-shard service options. `service.journal_path` is a base path: shard
  // k journals to "<base>.shard<k>"; empty disables journaling fleet-wide.
  ServiceOptions service;
};

class FleetService : public RequestHandler {
 public:
  // Builds every shard (replaying per-shard journals when present). Fails
  // on shards < 1, machines.size() < shards, or any shard's journal error.
  static StatusOr<std::unique_ptr<FleetService>> Create(
      std::vector<rack::RackMachine> machines, FleetOptions options);

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  // RequestHandler: one request line to one response block; requests are
  // serialized on the fleet mutex. Never aborts.
  [[nodiscard]] std::string HandleLine(const std::string& line)
      PANDIA_EXCLUDES(mu_) override;

  // Structured form for in-process callers.
  [[nodiscard]] wire::Response Handle(const wire::Request& request)
      PANDIA_EXCLUDES(mu_);

  // True once a SHUTDOWN was acknowledged (every shard's flag is set
  // together; shard 0 answers for the fleet).
  bool shutdown_requested() const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const rack::Fleet& fleet() const { return fleet_; }

  // Quiescent inspection only (tests): no concurrent Handle/HandleLine
  // while the reference is used.
  PlacementService& shard(int index) PANDIA_NO_THREAD_SAFETY_ANALYSIS {
    return *shards_[static_cast<size_t>(index)];
  }

 private:
  FleetService(std::vector<std::unique_ptr<PlacementService>> shards,
               FleetOptions options);

  wire::Response Dispatch(const wire::Request& request) PANDIA_REQUIRES(mu_);
  wire::Response RouteHello(const wire::Request& request) PANDIA_REQUIRES(mu_);
  wire::Response RouteAdmit(const wire::Request& request) PANDIA_REQUIRES(mu_);
  wire::Response RouteDepart(const wire::Request& request) PANDIA_REQUIRES(mu_);
  // STATUS / TELEMETRY / RECORDER / REBALANCE / COMPACT: every shard in
  // index order, shard payloads under `shard = k` delimiter rows.
  wire::Response FanOut(const wire::Request& request) PANDIA_REQUIRES(mu_);

  // Per-shard load snapshot for least-loaded routing.
  std::vector<rack::ShardLoad> ShardLoads() const PANDIA_REQUIRES(mu_);

  FleetOptions options_;  // immutable after construction
  rack::Fleet fleet_;     // immutable after construction
  // Serializes every fleet request: routing reads of shard state must be
  // atomic with the forwarded mutation.
  mutable util::Mutex mu_{"serve.fleet", util::kLockRankServeFleet};
  std::vector<std::unique_ptr<PlacementService>> shards_;
};

}  // namespace serve
}  // namespace pandia

#endif  // PANDIA_SRC_SERVE_FLEET_SERVICE_H_
