#include "src/serve/fleet_service.h"

#include <algorithm>
#include <optional>
#include <string_view>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace pandia {
namespace serve {
namespace {

obs::Counter& AdmitFallbacks() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("serve.fleet.admit_fallback");
  return counter;
}

}  // namespace

StatusOr<std::unique_ptr<FleetService>> FleetService::Create(
    std::vector<rack::RackMachine> machines, FleetOptions options) {
  if (options.shards < 1) {
    return Status::InvalidArgument(
        StrFormat("fleet needs at least 1 shard, got %d", options.shards));
  }
  if (machines.size() < static_cast<size_t>(options.shards)) {
    return Status::InvalidArgument(
        StrFormat("fleet of %d shards needs at least %d machines, got %zu",
                  options.shards, options.shards, machines.size()));
  }
  // Deal machines round-robin so heterogeneous machine lists spread their
  // types across shards instead of clustering per shard.
  std::vector<std::vector<rack::RackMachine>> per_shard(
      static_cast<size_t>(options.shards));
  for (size_t i = 0; i < machines.size(); ++i) {
    per_shard[i % static_cast<size_t>(options.shards)].push_back(
        std::move(machines[i]));
  }
  std::vector<std::unique_ptr<PlacementService>> shards;
  shards.reserve(per_shard.size());
  for (size_t k = 0; k < per_shard.size(); ++k) {
    ServiceOptions shard_options = options.service;
    if (!shard_options.journal_path.empty()) {
      shard_options.journal_path =
          StrFormat("%s.shard%zu", options.service.journal_path.c_str(), k);
    }
    StatusOr<PlacementService> shard =
        PlacementService::Create(std::move(per_shard[k]), std::move(shard_options));
    if (!shard.ok()) {
      return Status(shard.status().code(),
                    StrFormat("shard %zu: %s", k, shard.status().message().c_str()));
    }
    shards.push_back(
        std::make_unique<PlacementService>(std::move(shard).value()));
  }
  obs::MetricsRegistry::Global()
      .gauge("serve.fleet.shards")
      .Set(static_cast<double>(options.shards));
  return std::unique_ptr<FleetService>(
      new FleetService(std::move(shards), std::move(options)));
}

FleetService::FleetService(std::vector<std::unique_ptr<PlacementService>> shards,
                           FleetOptions options)
    : options_(std::move(options)),
      fleet_(static_cast<int>(shards.size()), options_.shard_policy),
      shards_(std::move(shards)) {}

std::string FleetService::HandleLine(const std::string& line) {
  StatusOr<wire::Request> request = wire::ParseRequest(line);
  if (!request.ok()) {
    // Shard 0 owns the canonical parse-error path (metrics, event log,
    // flight recorder), so stdin garbage is accounted exactly once.
    return shards_.front()->HandleLine(line);
  }
  return wire::FormatResponse(Handle(*request));
}

wire::Response FleetService::Handle(const wire::Request& request) {
  util::MutexLock lock(mu_);
  return Dispatch(request);
}

wire::Response FleetService::Dispatch(const wire::Request& request) {
  if (request.verb == "HELLO") {
    return RouteHello(request);
  }
  if (request.verb == "ADMIT") {
    return RouteAdmit(request);
  }
  if (request.verb == "DEPART") {
    return RouteDepart(request);
  }
  if (request.verb == "REBALANCE" || request.verb == "COMPACT" ||
      request.verb == "STATUS" || request.verb == "TELEMETRY" ||
      request.verb == "RECORDER") {
    return FanOut(request);
  }
  if (request.verb == "SHUTDOWN") {
    // Every shard acknowledges (and syncs its journal); one block answers.
    wire::Response response = shards_.front()->Handle(request);
    for (size_t k = 1; k < shards_.size(); ++k) {
      wire::Response rest = shards_[k]->Handle(request);
      if (!rest.ok && response.ok) {
        response = std::move(rest);
      }
    }
    return response;
  }
  if (request.verb == "METRICS") {
    // The obs registry is process-global, so any shard's answer is the
    // fleet's; shard 0 speaks for all.
    return shards_.front()->Handle(request);
  }
  // Unknown verbs: shard 0 answers for the fleet with the canonical
  // unknown-verb error.
  return shards_.front()->Handle(request);
}

wire::Response FleetService::RouteHello(const wire::Request& request) {
  wire::Response response = shards_.front()->Handle(request);
  if (!response.ok) {
    return response;  // e.g. HELLO with parameters: same error fleet-wide
  }
  for (std::string& row : response.payload) {
    constexpr std::string_view kPrefix = "capabilities = ";
    if (row.rfind(kPrefix, 0) != 0) {
      continue;
    }
    std::vector<std::string> capabilities =
        StrSplit(row.substr(kPrefix.size()), ',');
    capabilities.push_back("fleet");
    std::sort(capabilities.begin(), capabilities.end());
    capabilities.erase(std::unique(capabilities.begin(), capabilities.end()),
                       capabilities.end());
    std::string joined;
    for (const std::string& capability : capabilities) {
      if (!joined.empty()) {
        joined += ',';
      }
      joined += capability;
    }
    row = std::string(kPrefix) + joined;
  }
  response.payload.push_back(StrFormat("shards = %d", num_shards()));
  response.payload.push_back(StrFormat(
      "shard-policy = %s", rack::ShardPolicyName(options_.shard_policy).c_str()));
  return response;
}

std::vector<rack::ShardLoad> FleetService::ShardLoads() const {
  std::vector<rack::ShardLoad> loads;
  loads.reserve(shards_.size());
  for (const std::unique_ptr<PlacementService>& shard : shards_) {
    rack::ShardLoad load;
    const rack::Rack& rack = shard->rack();
    for (size_t m = 0; m < rack.machines().size(); ++m) {
      load.free_threads += rack.FreeThreadCount(static_cast<int>(m));
    }
    load.jobs = rack.JobCount();
    loads.push_back(load);
  }
  return loads;
}

wire::Response FleetService::RouteAdmit(const wire::Request& request) {
  const std::string* name = request.Find("name");
  if (name == nullptr || name->empty()) {
    // Let the shard produce the canonical invalid-argument error.
    return shards_.front()->Handle(request);
  }
  // Cross-shard duplicate check first: per-shard checks only see their own
  // residents, and the same name must never be live on two shards.
  for (size_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k]->rack().Has(*name)) {
      return wire::Response::Failure(Status::FailedPrecondition(StrFormat(
          "a job named '%s' is already resident (shard %zu)", name->c_str(), k)));
    }
  }
  const std::vector<rack::ShardLoad> loads = ShardLoads();
  const std::vector<int> order = fleet_.ShardOrder(*name, loads);
  std::optional<wire::Response> first_failure;
  for (size_t attempt = 0; attempt < order.size(); ++attempt) {
    const int k = order[attempt];
    wire::Response response = shards_[static_cast<size_t>(k)]->Handle(request);
    if (response.ok) {
      if (attempt > 0) {
        AdmitFallbacks().Increment();
      }
      response.payload.push_back(StrFormat("shard = %d", k));
      return response;
    }
    // Shard-local infeasibility (nothing fits: failed-precondition; no
    // machine of a matching type: not-found) falls through to the next
    // shard in the preference order. Anything else — a malformed request,
    // a degraded journal — would fail identically everywhere.
    const bool try_next = response.code == StatusCode::kFailedPrecondition ||
                          response.code == StatusCode::kNotFound;
    if (!try_next) {
      return response;
    }
    if (!first_failure.has_value()) {
      first_failure = std::move(response);
    }
  }
  return *std::move(first_failure);  // preferred shard's refusal
}

wire::Response FleetService::RouteDepart(const wire::Request& request) {
  const std::string* name = request.Find("name");
  if (name != nullptr) {
    for (size_t k = 0; k < shards_.size(); ++k) {
      if (!shards_[k]->rack().Has(*name)) {
        continue;
      }
      wire::Response response = shards_[k]->Handle(request);
      if (response.ok) {
        response.payload.push_back(StrFormat("shard = %zu", k));
      }
      return response;
    }
  }
  // Missing parameter or unknown job: shard 0 produces the canonical error.
  return shards_.front()->Handle(request);
}

wire::Response FleetService::FanOut(const wire::Request& request) {
  wire::Response aggregate = wire::Response::Success(request.verb);
  if (request.verb == "STATUS") {
    aggregate.payload.push_back(StrFormat("shards = %d", num_shards()));
    aggregate.payload.push_back(StrFormat(
        "shard-policy = %s",
        rack::ShardPolicyName(options_.shard_policy).c_str()));
  }
  for (size_t k = 0; k < shards_.size(); ++k) {
    wire::Response response = shards_[k]->Handle(request);
    if (!response.ok) {
      return response;  // first shard error fails the fleet request
    }
    aggregate.payload.push_back(StrFormat("shard = %zu", k));
    for (std::string& row : response.payload) {
      aggregate.payload.push_back(std::move(row));
    }
  }
  return aggregate;
}

bool FleetService::shutdown_requested() const {
  // Shards receive SHUTDOWN together; shard 0 answers for the fleet.
  return shards_.front()->shutdown_requested();
}

}  // namespace serve
}  // namespace pandia
