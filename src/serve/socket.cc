#include "src/serve/socket.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <map>
#include <vector>

#include "src/util/strings.h"

namespace pandia {
namespace serve {
namespace {

Status ErrnoStatus(const char* what, const std::string& detail) {
  return Status::Unavailable(
      StrFormat("%s (%s): %s", what, detail.c_str(), std::strerror(errno)));
}

// Writes all of `data` to the socket `fd`, retrying on short writes and
// EINTR. MSG_NOSIGNAL: a peer that hung up must yield EPIPE, not a SIGPIPE
// that kills the whole daemon.
Status WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("write to client failed", StrFormat("fd %d", fd));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<sockaddr_un> SocketAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path '%s' must be 1..%zu bytes", path.c_str(),
                  sizeof(addr.sun_path) - 1));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

// Per-connection (or stdin) line assembly: consumes complete lines from the
// buffer, feeding each to the service; returns the concatenated responses.
std::string DrainLines(PlacementService& service, std::string& buffer) {
  std::string responses;
  size_t start = 0;
  while (true) {
    const size_t newline = buffer.find('\n', start);
    if (newline == std::string::npos) {
      break;
    }
    std::string line = buffer.substr(start, newline - start);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    start = newline + 1;
    if (line.empty()) {
      continue;  // blank lines are keep-alive no-ops
    }
    responses += service.HandleLine(line);
    if (service.shutdown_requested()) {
      break;
    }
  }
  buffer.erase(0, start);
  return responses;
}

}  // namespace

StatusOr<SocketServer> SocketServer::Listen(const std::string& path) {
  StatusOr<sockaddr_un> addr = SocketAddress(path);
  if (!addr.ok()) {
    return addr.status();
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("cannot create socket", path);
  }
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      ::close(fd);
      return Status::FailedPrecondition(StrFormat(
          "socket path '%s' exists and is not a socket; refusing to delete it",
          path.c_str()));
    }
    // Probe the existing endpoint: a live daemon accepts the connection, a
    // socket left behind by a crashed run refuses it. Only the stale case
    // may be unlinked — clobbering a live daemon's endpoint would silently
    // cut it off from every future client.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) {
      ::close(fd);
      return ErrnoStatus("cannot create probe socket", path);
    }
    const bool accepted =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&*addr),
                  sizeof(*addr)) == 0;
    const int probe_errno = errno;
    ::close(probe);
    if (accepted || (probe_errno != ECONNREFUSED && probe_errno != ENOENT)) {
      ::close(fd);
      return Status::FailedPrecondition(StrFormat(
          "socket '%s' already has a live listener", path.c_str()));
    }
    ::unlink(path.c_str());  // stale socket from a crashed run
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    const Status status = ErrnoStatus("cannot bind socket", path);
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    const Status status = ErrnoStatus("cannot listen on socket", path);
    ::close(fd);
    ::unlink(path.c_str());
    return status;
  }
  return SocketServer(fd, path);
}

SocketServer::SocketServer(SocketServer&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

SocketServer& SocketServer::operator=(SocketServer&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
      ::unlink(path_.c_str());
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

SocketServer::~SocketServer() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

Status RunEventLoop(PlacementService& service, int stdin_fd,
                    std::FILE* stdout_stream, SocketServer* server) {
  // stdout_stream may be a pipe whose reader is gone; without this a single
  // fputs would SIGPIPE the process instead of failing the one write.
  std::signal(SIGPIPE, SIG_IGN);
  std::string stdin_buffer;
  std::map<int, std::string> clients;  // client fd -> partial line buffer
  bool stdin_open = stdin_fd >= 0;
  const auto close_clients = [&clients] {
    for (const auto& [fd, buffer] : clients) {
      ::close(fd);
    }
    clients.clear();
  };

  while (!service.shutdown_requested()) {
    // Without stdin, a rack with no listener could never terminate; the
    // loop still exits on SHUTDOWN, which is the supported path.
    if (!stdin_open && server == nullptr) {
      break;
    }
    std::vector<pollfd> fds;
    if (stdin_open) {
      fds.push_back(pollfd{stdin_fd, POLLIN, 0});
    }
    if (server != nullptr) {
      fds.push_back(pollfd{server->listen_fd(), POLLIN, 0});
    }
    for (const auto& [fd, buffer] : clients) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      close_clients();
      return ErrnoStatus("poll failed", "event loop");
    }

    for (const pollfd& entry : fds) {
      if (entry.revents == 0 || service.shutdown_requested()) {
        continue;
      }
      if (stdin_open && entry.fd == stdin_fd) {
        char chunk[4096];
        const ssize_t n = ::read(stdin_fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) {
          continue;
        }
        if (n > 0) {
          stdin_buffer.append(chunk, static_cast<size_t>(n));
        }
        std::string responses = DrainLines(service, stdin_buffer);
        if (n <= 0) {  // EOF: a trailing unterminated line still counts
          if (!stdin_buffer.empty()) {
            responses += service.HandleLine(stdin_buffer);
            stdin_buffer.clear();
          }
          stdin_open = false;
        }
        if (!responses.empty()) {
          // Response stream to the stdin client, not a journal file.
          std::fputs(responses.c_str(), stdout_stream);   // pandia-lint: allow(no-raw-journal-io)
          std::fflush(stdout_stream);                     // pandia-lint: allow(no-raw-journal-io)
        }
        // Stdin EOF ends a stdin-only loop (the top-of-loop check fires);
        // with a socket server the daemon merely detaches stdin and keeps
        // serving clients until SHUTDOWN.
      } else if (server != nullptr && entry.fd == server->listen_fd()) {
        const int client = ::accept(server->listen_fd(), nullptr, nullptr);
        if (client >= 0) {
          clients.emplace(client, std::string());
        }
      } else {
        const auto it = clients.find(entry.fd);
        if (it == clients.end()) {
          continue;
        }
        char chunk[4096];
        const ssize_t n = ::read(entry.fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) {
          continue;
        }
        if (n > 0) {
          it->second.append(chunk, static_cast<size_t>(n));
        }
        std::string responses = DrainLines(service, it->second);
        if (n <= 0 && !it->second.empty()) {
          responses += service.HandleLine(it->second);
          it->second.clear();
        }
        if (!responses.empty()) {
          // A client that hung up mid-response is its own problem; the
          // daemon keeps serving everyone else.
          (void)WriteAll(entry.fd, responses);
        }
        if (n <= 0) {
          ::close(entry.fd);
          clients.erase(it);
        }
      }
    }
  }
  close_clients();
  return Status::Ok();
}

namespace {

// Connects with retry-on-refused: a refused or absent socket usually means
// the daemon is restarting, so waiting out the backoff schedule rides
// through it. Other connect errors (permissions, path too long inside the
// kernel) fail immediately — retrying cannot fix them.
StatusOr<int> ConnectWithRetry(const sockaddr_un& addr, const std::string& path,
                               const ExchangeOptions& options) {
  int backoff_ms = options.backoff_initial_ms > 0 ? options.backoff_initial_ms : 1;
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return ErrnoStatus("cannot create socket", path);
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    const int connect_errno = errno;
    ::close(fd);
    const bool retryable =
        connect_errno == ECONNREFUSED || connect_errno == ENOENT;
    if (!retryable || attempt >= options.retries) {
      errno = connect_errno;
      return ErrnoStatus(
          attempt > 0 ? "cannot connect (retries exhausted)" : "cannot connect",
          path);
    }
    ::poll(nullptr, 0, backoff_ms);  // portable millisecond sleep
    if (backoff_ms < 1 << 20) {
      backoff_ms *= 2;
    }
  }
}

}  // namespace

StatusOr<std::string> SocketExchange(const std::string& path,
                                     const std::string& request_text,
                                     const ExchangeOptions& options) {
  StatusOr<sockaddr_un> addr = SocketAddress(path);
  if (!addr.ok()) {
    return addr.status();
  }
  StatusOr<int> connected = ConnectWithRetry(*addr, path, options);
  if (!connected.ok()) {
    return connected.status();
  }
  const int fd = *connected;
  if (options.timeout_ms >= 0) {
    // A zero timeval means "no timeout" to the kernel — the opposite of the
    // tightest deadline the caller asked for — so 0 is clamped to 1 ms.
    const int timeout_ms = options.timeout_ms > 0 ? options.timeout_ms : 1;
    timeval deadline{};
    deadline.tv_sec = timeout_ms / 1000;
    deadline.tv_usec = (timeout_ms % 1000) * 1000;
    // Best effort: a socket that refuses the option still works, just
    // without the deadline.
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &deadline, sizeof(deadline));
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &deadline, sizeof(deadline));
  }
  if (Status written = WriteAll(fd, request_text); !written.ok()) {
    ::close(fd);
    return written;
  }
  ::shutdown(fd, SHUT_WR);  // half-close: tell the daemon we are done asking
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0) {
      // SO_RCVTIMEO expiry lands here as EAGAIN: report the deadline
      // instead of silently returning a truncated stream.
      const Status status =
          (errno == EAGAIN || errno == EWOULDBLOCK)
              ? Status::Unavailable(StrFormat(
                    "response from '%s' timed out after %d ms", path.c_str(),
                    options.timeout_ms))
              : ErrnoStatus("read from daemon failed", path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      break;
    }
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace serve
}  // namespace pandia
