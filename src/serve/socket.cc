#include "src/serve/socket.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "src/serve/socket_internal.h"
#include "src/util/strings.h"

namespace pandia {
namespace serve {
namespace {

using sock_internal::ErrnoStatus;
using sock_internal::SocketAddress;

// Stop reading a client once this many unflushed response bytes are buffered
// for it; resume once the backlog drains below the low watermark. Bounds
// daemon memory per slow client without head-of-line blocking anyone else.
constexpr size_t kWriteHighWatermark = 4u << 20;
constexpr size_t kWriteLowWatermark = 64u << 10;
// Compact the flushed prefix of a write buffer once it exceeds this.
constexpr size_t kWriteCompactThreshold = 64u << 10;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

void SetBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
}

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

// Readiness-notification backend. Level-triggered semantics on both
// implementations: an fd with unread input (or writable space while write
// interest is registered) keeps firing until serviced.
class Poller {
 public:
  virtual ~Poller() = default;
  virtual Status Add(int fd, bool read, bool write) = 0;
  virtual Status Update(int fd, bool read, bool write) = 0;
  virtual void Remove(int fd) = 0;
  // Blocks until at least one fd is ready; fills `out` (empty on EINTR).
  virtual Status Wait(std::vector<PollerEvent>* out) = 0;
};

// Portable fallback: rebuilds the pollfd array from the interest map on
// every wait. O(n) per wait, which is fine at the daemon's client counts.
class PollPoller : public Poller {
 public:
  Status Add(int fd, bool read, bool write) override {
    interest_[fd] = Events(read, write);
    return Status::Ok();
  }
  Status Update(int fd, bool read, bool write) override {
    interest_[fd] = Events(read, write);
    return Status::Ok();
  }
  void Remove(int fd) override { interest_.erase(fd); }
  Status Wait(std::vector<PollerEvent>* out) override {
    out->clear();
    fds_.clear();
    for (const auto& [fd, events] : interest_) {
      fds_.push_back(pollfd{fd, events, 0});
    }
    if (::poll(fds_.data(), fds_.size(), -1) < 0) {
      if (errno == EINTR) {
        return Status::Ok();
      }
      return ErrnoStatus("poll failed", "event loop");
    }
    for (const pollfd& entry : fds_) {
      if (entry.revents == 0) {
        continue;
      }
      out->push_back(PollerEvent{
          entry.fd,
          (entry.revents & (POLLIN | POLLHUP | POLLERR)) != 0,
          (entry.revents & POLLOUT) != 0,
          (entry.revents & (POLLERR | POLLNVAL)) != 0});
    }
    return Status::Ok();
  }

 private:
  static short Events(bool read, bool write) {
    return static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
  }
  std::map<int, short> interest_;
  std::vector<pollfd> fds_;
};

#if defined(__linux__)
class EpollPoller : public Poller {
 public:
  static std::unique_ptr<EpollPoller> Create() {
    const int fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (fd < 0) {
      return nullptr;
    }
    return std::unique_ptr<EpollPoller>(new EpollPoller(fd));
  }
  ~EpollPoller() override { ::close(epfd_); }

  Status Add(int fd, bool read, bool write) override {
    return Ctl(EPOLL_CTL_ADD, fd, read, write);
  }
  Status Update(int fd, bool read, bool write) override {
    return Ctl(EPOLL_CTL_MOD, fd, read, write);
  }
  void Remove(int fd) override {
    epoll_event unused{};
    (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &unused);
  }
  Status Wait(std::vector<PollerEvent>* out) override {
    out->clear();
    epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) {
        return Status::Ok();
      }
      return ErrnoStatus("epoll_wait failed", "event loop");
    }
    for (int i = 0; i < n; ++i) {
      out->push_back(PollerEvent{
          events[i].data.fd,
          (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0,
          (events[i].events & EPOLLOUT) != 0,
          (events[i].events & EPOLLERR) != 0});
    }
    return Status::Ok();
  }

 private:
  explicit EpollPoller(int fd) : epfd_(fd) {}
  Status Ctl(int op, int fd, bool read, bool write) {
    epoll_event event{};
    event.events = (read ? static_cast<uint32_t>(EPOLLIN) : 0u) |
                   (write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    event.data.fd = fd;
    if (::epoll_ctl(epfd_, op, fd, &event) != 0) {
      return ErrnoStatus("epoll_ctl failed", StrFormat("fd %d", fd));
    }
    return Status::Ok();
  }
  int epfd_;
};
#endif  // defined(__linux__)

std::unique_ptr<Poller> MakePoller() {
#if defined(__linux__)
  const char* forced = std::getenv("PANDIA_EVENT_LOOP");
  if (forced == nullptr || std::string_view(forced) != "poll") {
    std::unique_ptr<Poller> epoll = EpollPoller::Create();
    if (epoll != nullptr) {
      return epoll;
    }
  }
#endif
  return std::make_unique<PollPoller>();
}

// Per-connection (or stdin) line assembly: consumes complete lines from the
// buffer, feeding each to the service; returns the concatenated responses.
// This is where pipelining happens — a client that wrote N request lines
// before reading gets N response blocks queued back to back.
std::string DrainLines(RequestHandler& service, std::string& buffer) {
  std::string responses;
  size_t start = 0;
  while (true) {
    const size_t newline = buffer.find('\n', start);
    if (newline == std::string::npos) {
      break;
    }
    std::string line = buffer.substr(start, newline - start);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    start = newline + 1;
    if (line.empty()) {
      continue;  // blank lines are keep-alive no-ops
    }
    responses += service.HandleLine(line);
    if (service.shutdown_requested()) {
      break;
    }
  }
  buffer.erase(0, start);
  return responses;
}

// One socket client: partial-request input buffer, unflushed response bytes,
// and the backpressure state machine described in socket.h.
struct Connection {
  std::string in;
  std::string out;
  size_t out_offset = 0;  // bytes of `out` already written to the socket
  bool peer_eof = false;  // read side closed: flush what remains, then close
  bool paused = false;    // over the high watermark: read interest dropped
  // Interest currently registered with the poller (avoids no-op syscalls).
  bool want_read = true;
  bool want_write = false;

  size_t pending() const { return out.size() - out_offset; }
};

// Writes as much buffered output as the socket accepts without blocking.
// Returns false on a fatal transport error (peer reset, EPIPE).
bool FlushSome(int fd, Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.out_offset,
                             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    return false;
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  } else if (conn.out_offset >= kWriteCompactThreshold) {
    conn.out.erase(0, conn.out_offset);
    conn.out_offset = 0;
  }
  return true;
}

// Services one readiness event on a client connection. Returns false when
// the connection should be closed (clean EOF fully flushed, or error).
bool HandleClient(RequestHandler& service, Poller& poller, int fd,
                  const PollerEvent& event, Connection& conn) {
  bool fatal = event.error;
  if (!fatal && event.readable && !conn.paused && !conn.peer_eof) {
    char chunk[64 * 1024];
    while (true) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n > 0) {
        conn.in.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        conn.peer_eof = true;
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      fatal = true;
      break;
    }
    if (!fatal) {
      conn.out += DrainLines(service, conn.in);
      // EOF: a trailing unterminated line still counts as a request.
      if (conn.peer_eof && !conn.in.empty() && !service.shutdown_requested()) {
        conn.out += service.HandleLine(conn.in);
        conn.in.clear();
      }
    }
  }
  if (!fatal) {
    fatal = !FlushSome(fd, conn);
  }
  if (fatal) {
    return false;
  }
  if (conn.peer_eof && conn.pending() == 0) {
    return false;  // clean close: everything owed has been delivered
  }
  if (!conn.paused && conn.pending() >= kWriteHighWatermark) {
    conn.paused = true;
  } else if (conn.paused && conn.pending() <= kWriteLowWatermark) {
    conn.paused = false;
  }
  const bool want_read = !conn.paused && !conn.peer_eof;
  const bool want_write = conn.pending() > 0;
  if (want_read != conn.want_read || want_write != conn.want_write) {
    conn.want_read = want_read;
    conn.want_write = want_write;
    (void)poller.Update(fd, want_read, want_write);
  }
  return true;
}

void AcceptClients(Poller& poller, int listen_fd,
                   std::map<int, Connection>& clients) {
  while (true) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // EAGAIN, or a transient accept failure: retry on next event
    }
    SetNonBlocking(client);
    if (!poller.Add(client, /*read=*/true, /*write=*/false).ok()) {
      ::close(client);
      continue;
    }
    clients.emplace(client, Connection{});
  }
}

}  // namespace

StatusOr<SocketServer> SocketServer::Listen(const std::string& path) {
  StatusOr<sockaddr_un> addr = SocketAddress(path);
  if (!addr.ok()) {
    return addr.status();
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("cannot create socket", path);
  }
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      ::close(fd);
      return Status::FailedPrecondition(StrFormat(
          "socket path '%s' exists and is not a socket; refusing to delete it",
          path.c_str()));
    }
    // Probe the existing endpoint: a live daemon accepts the connection, a
    // socket left behind by a crashed run refuses it. Only the stale case
    // may be unlinked — clobbering a live daemon's endpoint would silently
    // cut it off from every future client.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) {
      ::close(fd);
      return ErrnoStatus("cannot create probe socket", path);
    }
    const bool accepted =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&*addr),
                  sizeof(*addr)) == 0;
    const int probe_errno = errno;
    ::close(probe);
    if (accepted || (probe_errno != ECONNREFUSED && probe_errno != ENOENT)) {
      ::close(fd);
      return Status::FailedPrecondition(StrFormat(
          "socket '%s' already has a live listener", path.c_str()));
    }
    ::unlink(path.c_str());  // stale socket from a crashed run
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    const Status status = ErrnoStatus("cannot bind socket", path);
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status = ErrnoStatus("cannot listen on socket", path);
    ::close(fd);
    ::unlink(path.c_str());
    return status;
  }
  return SocketServer(fd, path);
}

SocketServer::SocketServer(SocketServer&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

SocketServer& SocketServer::operator=(SocketServer&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
      ::unlink(path_.c_str());
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

SocketServer::~SocketServer() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

Status RunEventLoop(RequestHandler& service, int stdin_fd,
                    std::FILE* stdout_stream, SocketServer* server) {
  // stdout_stream may be a pipe whose reader is gone; without this a single
  // fputs would SIGPIPE the process instead of failing the one write.
  std::signal(SIGPIPE, SIG_IGN);
  std::unique_ptr<Poller> poller = MakePoller();
  std::string stdin_buffer;
  std::map<int, Connection> clients;
  bool stdin_open = stdin_fd >= 0;

  const auto drop_client = [&](std::map<int, Connection>::iterator it) {
    poller->Remove(it->first);
    ::close(it->first);
    clients.erase(it);
  };
  const auto close_clients = [&] {
    while (!clients.empty()) {
      drop_client(clients.begin());
    }
  };

  if (stdin_open) {
    if (Status added = poller->Add(stdin_fd, /*read=*/true, /*write=*/false);
        !added.ok()) {
      // epoll cannot watch regular files (a redirected stdin); fall back to
      // poll for the whole loop rather than losing the stdin transport.
      poller = std::make_unique<PollPoller>();
      (void)poller->Add(stdin_fd, /*read=*/true, /*write=*/false);
    }
  }
  if (server != nullptr) {
    SetNonBlocking(server->listen_fd());
    if (Status added =
            poller->Add(server->listen_fd(), /*read=*/true, /*write=*/false);
        !added.ok()) {
      return added;
    }
  }

  std::vector<PollerEvent> events;
  while (!service.shutdown_requested()) {
    // Without stdin, a rack with no listener could never terminate; the
    // loop still exits on SHUTDOWN, which is the supported path.
    if (!stdin_open && server == nullptr) {
      break;
    }
    if (Status waited = poller->Wait(&events); !waited.ok()) {
      close_clients();
      return waited;
    }
    for (const PollerEvent& event : events) {
      if (service.shutdown_requested()) {
        break;  // later events flush below, after the loop
      }
      if (stdin_open && event.fd == stdin_fd) {
        char chunk[4096];
        const ssize_t n = ::read(stdin_fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) {
          continue;
        }
        if (n > 0) {
          stdin_buffer.append(chunk, static_cast<size_t>(n));
        }
        std::string responses = DrainLines(service, stdin_buffer);
        if (n <= 0) {  // EOF: a trailing unterminated line still counts
          if (!stdin_buffer.empty()) {
            responses += service.HandleLine(stdin_buffer);
            stdin_buffer.clear();
          }
          poller->Remove(stdin_fd);
          stdin_open = false;
        }
        if (!responses.empty()) {
          // Response stream to the stdin client, not a journal file.
          std::fputs(responses.c_str(), stdout_stream);   // pandia-lint: allow(no-raw-journal-io)
          std::fflush(stdout_stream);                     // pandia-lint: allow(no-raw-journal-io)
        }
        // Stdin EOF ends a stdin-only loop (the top-of-loop check fires);
        // with a socket server the daemon merely detaches stdin and keeps
        // serving clients until SHUTDOWN.
      } else if (server != nullptr && event.fd == server->listen_fd()) {
        AcceptClients(*poller, server->listen_fd(), clients);
      } else {
        const auto it = clients.find(event.fd);
        if (it == clients.end()) {
          continue;
        }
        if (!HandleClient(service, *poller, event.fd, event, it->second)) {
          drop_client(it);
        }
      }
    }
  }
  // Deliver what is owed — in particular the "ok SHUTDOWN" block to the
  // client that asked for it — with blocking writes; the buffers are
  // watermark-bounded so this terminates promptly.
  for (auto& [fd, conn] : clients) {
    if (conn.pending() == 0) {
      continue;
    }
    SetBlocking(fd);
    (void)sock_internal::WriteAll(fd, conn.out.substr(conn.out_offset));
  }
  close_clients();
  return Status::Ok();
}

}  // namespace serve
}  // namespace pandia
