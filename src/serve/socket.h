// Transports for the placement service: a Unix-domain socket listener, the
// poll()-based event loop the daemon runs, and the client-side exchange
// helper the pandia_serve_client tool and the tests use.
//
// The event loop multiplexes line-delimited requests from an optional stdin
// file descriptor (answers go to a stdio stream) and from any number of
// socket clients (each answered on its own connection). Requests are
// processed strictly serially in arrival order, so daemon state stays
// deterministic regardless of transport.
#ifndef PANDIA_SRC_SERVE_SOCKET_H_
#define PANDIA_SRC_SERVE_SOCKET_H_

#include <cstdio>
#include <string>

#include "src/serve/service.h"
#include "src/util/status.h"

namespace pandia {
namespace serve {

// A listening Unix-domain socket. The path is unlinked on destruction (and
// any stale socket file is unlinked before binding).
class SocketServer {
 public:
  static StatusOr<SocketServer> Listen(const std::string& path);

  SocketServer(SocketServer&& other) noexcept;
  SocketServer& operator=(SocketServer&& other) noexcept;
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;
  ~SocketServer();

  int listen_fd() const { return fd_; }
  const std::string& path() const { return path_; }

 private:
  SocketServer(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

// Runs the serving loop until a SHUTDOWN request is acknowledged or a
// transport error occurs. `server` may be null (stdin/stdout only — then
// stdin EOF also ends the loop); `stdin_fd` may be -1 (socket only). With
// both transports, stdin EOF merely detaches stdin: the daemon keeps
// serving socket clients, so it can be backgrounded with stdin closed.
Status RunEventLoop(PlacementService& service, int stdin_fd,
                    std::FILE* stdout_stream, SocketServer* server);

// Client-side exchange knobs. Defaults preserve the historical behaviour:
// one connection attempt, no deadline.
struct ExchangeOptions {
  // Per-operation deadline (SO_SNDTIMEO/SO_RCVTIMEO) in milliseconds; a
  // stalled daemon fails the exchange instead of hanging the client.
  // Negative: no deadline. 0 is clamped to 1 ms (a zero timeval would tell
  // the kernel "no timeout", the opposite of the tightest deadline).
  int timeout_ms = -1;
  // Extra connection attempts after a refused/absent socket (the daemon is
  // restarting), spaced by exponential backoff starting at
  // backoff_initial_ms and doubling per retry.
  int retries = 0;
  int backoff_initial_ms = 50;
};

// Client side: connects to `path`, sends `request_text` (one or more
// newline-terminated request lines), half-closes, and returns everything
// the daemon wrote back (a sequence of response blocks). Retries only the
// connect step (ECONNREFUSED/ENOENT — a daemon mid-restart); a connection
// that dies mid-response is never retried, so a truncated stream surfaces
// as a short read the caller's response parser rejects.
StatusOr<std::string> SocketExchange(const std::string& path,
                                     const std::string& request_text,
                                     const ExchangeOptions& options = {});

}  // namespace serve
}  // namespace pandia

#endif  // PANDIA_SRC_SERVE_SOCKET_H_
