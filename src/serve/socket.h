// Server-side transports for the placement daemon: a Unix-domain socket
// listener and the multi-client event loop that drives a RequestHandler
// (PlacementService or FleetService — the loop cannot tell them apart).
//
// The event loop multiplexes line-delimited requests from an optional stdin
// file descriptor (answers go to a stdio stream) and from any number of
// socket clients (each answered on its own connection). Requests are
// processed strictly serially in arrival order, so daemon state stays
// deterministic regardless of transport.
//
// Mechanics (see socket.cc):
//   * epoll on Linux, with an automatic poll() fallback; setting the
//     PANDIA_EVENT_LOOP=poll environment variable forces the fallback
//     (tests use it to cover both backends).
//   * client sockets are nonblocking; requests pipeline — a client may
//     write any number of request lines before reading, and responses
//     stream back in order.
//   * per-connection bounded write buffering: responses a slow client has
//     not drained are buffered up to a high watermark, past which the
//     daemon stops *reading* that client (backpressure) while continuing
//     to serve everyone else — one stalled reader cannot head-of-line
//     block the fleet.
//
// The client side of the protocol lives in src/serve/client.h
// (serve::Client and the one-shot SocketExchange wrapper).
#ifndef PANDIA_SRC_SERVE_SOCKET_H_
#define PANDIA_SRC_SERVE_SOCKET_H_

#include <cstdio>
#include <string>

#include "src/serve/handler.h"
#include "src/util/status.h"

namespace pandia {
namespace serve {

// A listening Unix-domain socket. The path is unlinked on destruction (and
// any stale socket file is unlinked before binding).
class SocketServer {
 public:
  static StatusOr<SocketServer> Listen(const std::string& path);

  SocketServer(SocketServer&& other) noexcept;
  SocketServer& operator=(SocketServer&& other) noexcept;
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;
  ~SocketServer();

  int listen_fd() const { return fd_; }
  const std::string& path() const { return path_; }

 private:
  SocketServer(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

// Runs the serving loop until a SHUTDOWN request is acknowledged or a
// transport error occurs. `server` may be null (stdin/stdout only — then
// stdin EOF also ends the loop); `stdin_fd` may be -1 (socket only). With
// both transports, stdin EOF merely detaches stdin: the daemon keeps
// serving socket clients, so it can be backgrounded with stdin closed.
// On shutdown, pending response bytes are flushed to every connected
// client best-effort before the loop returns.
Status RunEventLoop(RequestHandler& service, int stdin_fd,
                    std::FILE* stdout_stream, SocketServer* server);

}  // namespace serve
}  // namespace pandia

#endif  // PANDIA_SRC_SERVE_SOCKET_H_
