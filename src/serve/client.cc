#include "src/serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "src/serve/socket_internal.h"
#include "src/util/strings.h"

namespace pandia {
namespace serve {
namespace {

using sock_internal::ErrnoStatus;
using sock_internal::SocketAddress;
using sock_internal::WriteAll;

// Connects with retry-on-refused: a refused or absent socket usually means
// the daemon is restarting, so waiting out the backoff schedule rides
// through it. Other connect errors (permissions, path too long inside the
// kernel) fail immediately — retrying cannot fix them.
StatusOr<int> ConnectWithRetry(const sockaddr_un& addr, const std::string& path,
                               const ClientOptions& options) {
  int backoff_ms = options.backoff_initial_ms > 0 ? options.backoff_initial_ms : 1;
  for (int attempt = 0;; ++attempt) {
    const int fd = sock_internal::ConnectStream(addr);
    if (fd >= 0) {
      return fd;
    }
    const int connect_errno = errno;
    const bool retryable =
        connect_errno == ECONNREFUSED || connect_errno == ENOENT;
    if (!retryable || attempt >= options.retries) {
      errno = connect_errno;
      return ErrnoStatus(
          attempt > 0 ? "cannot connect (retries exhausted)" : "cannot connect",
          path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    if (backoff_ms < 1 << 20) {
      backoff_ms *= 2;
    }
  }
}

}  // namespace

StatusOr<Client> Client::Connect(const std::string& path,
                                 const ClientOptions& options) {
  StatusOr<sockaddr_un> addr = SocketAddress(path);
  if (!addr.ok()) {
    return addr.status();
  }
  StatusOr<int> connected = ConnectWithRetry(*addr, path, options);
  if (!connected.ok()) {
    return connected.status();
  }
  const int fd = *connected;
  if (options.timeout_ms >= 0) {
    // A zero timeval means "no timeout" to the kernel — the opposite of the
    // tightest deadline the caller asked for — so 0 is clamped to 1 ms.
    const int timeout_ms = options.timeout_ms > 0 ? options.timeout_ms : 1;
    timeval deadline{};
    deadline.tv_sec = timeout_ms / 1000;
    deadline.tv_usec = (timeout_ms % 1000) * 1000;
    // Best effort: a socket that refuses the option still works, just
    // without the deadline.
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &deadline, sizeof(deadline));
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &deadline, sizeof(deadline));
  }
  Client client(fd, path, options);
  if (options.handshake) {
    if (Status negotiated = client.Handshake(); !negotiated.ok()) {
      return negotiated;
    }
  }
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      options_(other.options_),
      buffer_(std::move(other.buffer_)),
      protocol_version_(other.protocol_version_),
      capabilities_(std::move(other.capabilities_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    options_ = other.options_;
    buffer_ = std::move(other.buffer_);
    protocol_version_ = other.protocol_version_;
    capabilities_ = std::move(other.capabilities_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool Client::has_capability(std::string_view name) const {
  for (const std::string& capability : capabilities_) {
    if (capability == name) {
      return true;
    }
  }
  return false;
}

Status Client::Handshake() {
  if (Status sent = Send("HELLO\n"); !sent.ok()) {
    return sent;
  }
  StatusOr<wire::Response> response = Receive();
  if (!response.ok()) {
    return response.status();  // transport failure: the server is not there
  }
  if (!response->ok) {
    // A pre-HELLO server answers with a structured err (unknown verb).
    // That IS a successful negotiation: protocol v1, nothing advertised.
    protocol_version_ = wire::kProtocolVersion;
    capabilities_.clear();
    return Status::Ok();
  }
  for (const std::string& row : response->payload) {
    const size_t eq = row.find(" = ");
    if (eq == std::string::npos) {
      continue;
    }
    const std::string key = row.substr(0, eq);
    const std::string value = row.substr(eq + 3);
    if (key == "protocol") {
      protocol_version_ = std::atoi(value.c_str());
    } else if (key == "capabilities") {
      capabilities_.clear();
      for (std::string& capability : StrSplit(value, ',')) {
        if (!capability.empty()) {
          capabilities_.push_back(std::move(capability));
        }
      }
    }
  }
  return Status::Ok();
}

StatusOr<wire::Response> Client::Call(const std::string& line) {
  if (Status sent = Send(line + "\n"); !sent.ok()) {
    return sent;
  }
  return Receive();
}

StatusOr<std::vector<wire::Response>> Client::CallMany(
    std::span<const std::string> lines) {
  std::string batch;
  for (const std::string& line : lines) {
    batch += line;
    batch += '\n';
  }
  if (Status sent = Send(batch); !sent.ok()) {
    return sent;
  }
  std::vector<wire::Response> responses;
  responses.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    StatusOr<wire::Response> response = Receive();
    if (!response.ok()) {
      return response.status();
    }
    responses.push_back(*std::move(response));
  }
  return responses;
}

Status Client::Send(const std::string& text) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is closed");
  }
  return WriteAll(fd_, text);
}

StatusOr<bool> Client::FillBuffer() {
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      return true;
    }
    if (n == 0) {
      return false;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expiry: report the deadline instead of silently
      // returning a truncated stream.
      return Status::Unavailable(StrFormat(
          "response from '%s' timed out after %d ms", path_.c_str(),
          options_.timeout_ms));
    }
    return ErrnoStatus("read from daemon failed", path_);
  }
}

Status Client::ReadBlock(std::vector<std::string>* lines) {
  lines->clear();
  size_t scanned = 0;
  while (true) {
    const size_t newline = buffer_.find('\n', scanned);
    if (newline == std::string::npos) {
      scanned = buffer_.size();
      StatusOr<bool> more = FillBuffer();
      if (!more.ok()) {
        return more.status();
      }
      if (!*more) {
        return Status::DataLoss(StrFormat(
            "connection to '%s' closed mid-response (%zu buffered bytes)",
            path_.c_str(), buffer_.size()));
      }
      continue;
    }
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    scanned = 0;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const bool terminator = line == ".";
    lines->push_back(std::move(line));
    if (terminator) {
      return Status::Ok();
    }
  }
}

StatusOr<wire::Response> Client::Receive() {
  std::vector<std::string> lines;
  if (Status read = ReadBlock(&lines); !read.ok()) {
    return read;
  }
  return wire::ParseResponse(lines);
}

StatusOr<std::string> Client::ReceiveRaw() {
  std::vector<std::string> lines;
  if (Status read = ReadBlock(&lines); !read.ok()) {
    return read;
  }
  std::string block;
  for (const std::string& line : lines) {
    block += line;
    block += '\n';
  }
  return block;
}

Status Client::HalfClose() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is closed");
  }
  if (::shutdown(fd_, SHUT_WR) != 0) {
    return ErrnoStatus("half-close failed", path_);
  }
  return Status::Ok();
}

StatusOr<std::string> Client::DrainToEof() {
  std::string drained = std::move(buffer_);
  buffer_.clear();
  while (true) {
    StatusOr<bool> more = FillBuffer();
    if (!more.ok()) {
      return more.status();
    }
    if (!*more) {
      drained += buffer_;
      buffer_.clear();
      return drained;
    }
    drained += buffer_;
    buffer_.clear();
  }
}

StatusOr<std::string> SocketExchange(const std::string& path,
                                     const std::string& request_text,
                                     const ExchangeOptions& options) {
  ClientOptions client_options;
  client_options.timeout_ms = options.timeout_ms;
  client_options.retries = options.retries;
  client_options.backoff_initial_ms = options.backoff_initial_ms;
  client_options.handshake = false;  // EOF framing: no extra block on the wire
  StatusOr<Client> client = Client::Connect(path, client_options);
  if (!client.ok()) {
    return client.status();
  }
  if (Status sent = client->Send(request_text); !sent.ok()) {
    return sent;
  }
  if (Status closed = client->HalfClose(); !closed.ok()) {
    return closed;
  }
  return client->DrainToEof();
}

}  // namespace serve
}  // namespace pandia
