#include "src/eval/experiment.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/parallel_metrics.h"
#include "src/obs/trace.h"
#include "src/predictor/prediction_cache.h"
#include "src/topology/enumerate.h"
#include "src/util/check.h"
#include "src/util/parallel.h"
#include "src/util/stats.h"

namespace pandia {
namespace eval {
namespace {

double BestGapPct(const SweepResult& result, size_t index) {
  const double best_perf = 1.0 / result.placements[result.best_measured_index].measured_time;
  const double perf = 1.0 / result.placements[index].measured_time;
  return (best_perf - perf) / best_perf * 100.0;
}

}  // namespace

std::vector<Placement> SweepPlacements(const MachineTopology& topo,
                                       const SweepOptions& options) {
  std::vector<Placement> placements;
  if (CountCanonicalPlacements(topo) <= options.exhaustive_limit) {
    placements = EnumerateCanonicalPlacements(topo);
    if (options.filter) {
      std::erase_if(placements,
                    [&](const Placement& p) { return !options.filter(p); });
    }
  } else {
    placements = SampleCanonicalPlacements(topo, options.sample_count, options.seed,
                                           options.filter);
    // The full-machine placement anchors the "peak at maximum threads"
    // statistic (§6.1); keep it in every sample that admits it.
    const Placement full = Placement::TwoPerCore(topo, topo.NumHwThreads());
    if ((!options.filter || options.filter(full)) &&
        std::find(placements.begin(), placements.end(), full) == placements.end()) {
      placements.push_back(full);
      std::sort(placements.begin(), placements.end(), Placement::PaperOrderLess);
    }
  }
  PANDIA_CHECK_MSG(!placements.empty(), "no placements matched the sweep options");
  return placements;
}

SweepResult RunSweep(const sim::Machine& machine, const Predictor& predictor,
                     const sim::WorkloadSpec& workload, const SweepOptions& options) {
  const obs::TraceSpan span("eval.sweep");
  SweepResult result;
  result.workload = workload.name;
  result.machine = machine.topology().name;
  const std::vector<Placement> placements =
      SweepPlacements(machine.topology(), options);
  static obs::Counter& sweep_placements =
      obs::MetricsRegistry::Global().counter("eval.sweep_placements");
  obs::InstallParallelMetrics();
  PredictionCache* cache =
      options.common.use_cache ? &PredictionCache::Global() : nullptr;
  // Each placement's measure+predict pair runs independently; slot i of the
  // result vector belongs to placement i, so the sweep series is identical
  // to a serial run at any job count.
  std::vector<PlacementResult> results;
  results.reserve(placements.size());
  for (const Placement& placement : placements) {
    results.push_back(PlacementResult{placement});
  }
  util::ParallelFor(placements.size(), options.common.jobs, [&](size_t i) {
    PlacementResult& pr = results[i];
    {
      const obs::TraceSpan measure_span("sweep.measure");
      pr.measured_time =
          machine.RunOne(workload, pr.placement).jobs[0].completion_time;
    }
    {
      const obs::TraceSpan predict_span("sweep.predict");
      pr.predicted_time = PredictCached(predictor, pr.placement, cache).time;
    }
    sweep_placements.Increment();
  });
  result.placements = std::move(results);
  ComputeMetrics(result);
  return result;
}

void ComputeMetrics(SweepResult& result) {
  PANDIA_CHECK(!result.placements.empty());
  // Normalize each series to its own best performance (Figure 1's y-axis).
  double best_measured_perf = 0.0;
  double best_predicted_perf = 0.0;
  for (size_t i = 0; i < result.placements.size(); ++i) {
    const PlacementResult& pr = result.placements[i];
    PANDIA_CHECK(pr.measured_time > 0.0 && pr.predicted_time > 0.0);
    if (1.0 / pr.measured_time > best_measured_perf) {
      best_measured_perf = 1.0 / pr.measured_time;
      result.best_measured_index = i;
    }
    if (1.0 / pr.predicted_time > best_predicted_perf) {
      best_predicted_perf = 1.0 / pr.predicted_time;
      result.best_predicted_index = i;
    }
  }
  std::vector<double> errors;
  std::vector<double> diffs;
  errors.reserve(result.placements.size());
  diffs.reserve(result.placements.size());
  for (PlacementResult& pr : result.placements) {
    pr.measured_norm = (1.0 / pr.measured_time) / best_measured_perf;
    pr.predicted_norm = (1.0 / pr.predicted_time) / best_predicted_perf;
    errors.push_back(std::fabs(pr.predicted_norm - pr.measured_norm) /
                     pr.measured_norm * 100.0);
    diffs.push_back(pr.measured_norm - pr.predicted_norm);
  }
  result.error_mean = Mean(errors);
  result.error_median = Median(errors);

  // Offset error (§6.1): shift the predicted series by the mean difference
  // before measuring, which scores trend accuracy rather than calibration.
  const double offset = Mean(diffs);
  std::vector<double> offset_errors;
  offset_errors.reserve(result.placements.size());
  for (const PlacementResult& pr : result.placements) {
    offset_errors.push_back(std::fabs(pr.predicted_norm + offset - pr.measured_norm) /
                            pr.measured_norm * 100.0);
  }
  result.offset_error_mean = Mean(offset_errors);
  result.offset_error_median = Median(offset_errors);

  result.best_placement_gap_pct = BestGapPct(result, result.best_predicted_index);
  const Placement& best = result.placements[result.best_measured_index].placement;
  result.best_uses_all_threads =
      best.TotalThreads() == best.topology().NumHwThreads();
  for (size_t i = 0; i < result.placements.size(); ++i) {
    const Placement& placement = result.placements[i].placement;
    if (placement.TotalThreads() == placement.topology().NumHwThreads() &&
        BestGapPct(result, i) <= 1.0) {
      result.full_machine_within_one_pct = true;
      break;
    }
  }
}

SweepBaselineResult RunSweepBaseline(const sim::Machine& machine,
                                     const sim::WorkloadSpec& workload,
                                     const WorkloadDescription& description,
                                     const SweepResult& full_sweep,
                                     double tolerance_pct) {
  SweepBaselineResult result;
  result.workload = workload.name;

  // Cost of the compact and spread sweeps: every run is timed in full.
  const MachineTopology& topo = machine.topology();
  double sweep_cost = 0.0;
  double sweep_best_perf = 0.0;
  for (const std::vector<Placement>& series :
       {CompactSweep(topo), SpreadSweep(topo)}) {
    for (const Placement& placement : series) {
      const double time = machine.RunOne(workload, placement).jobs[0].completion_time;
      sweep_cost += time;
      sweep_best_perf = std::max(sweep_best_perf, 1.0 / time);
    }
  }

  // Cost of Pandia's six profiling runs: t1 * (1 + r2 + ... + r6).
  const double pandia_cost =
      description.t1 *
      (1.0 + description.r2 + description.r3 + description.r4 + description.r5 +
       description.r6);
  result.cost_ratio = sweep_cost / pandia_cost;

  const double best_perf =
      1.0 / full_sweep.placements[full_sweep.best_measured_index].measured_time;
  result.sweep_best_gap_pct = (best_perf - sweep_best_perf) / best_perf * 100.0;
  result.found_best = result.sweep_best_gap_pct <= tolerance_pct + 1e-9;
  result.pandia_best_gap_pct = full_sweep.best_placement_gap_pct;
  return result;
}

bool AtMostTwoSockets(const Placement& placement) {
  return placement.NumActiveSockets() <= 2;
}

bool AtMostTwentyCores(const Placement& placement) {
  int cores = 0;
  for (int s = 0; s < placement.topology().num_sockets; ++s) {
    cores += placement.CoresUsedOnSocket(s);
  }
  return cores <= 20;
}

}  // namespace eval
}  // namespace pandia
