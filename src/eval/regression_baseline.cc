#include "src/eval/regression_baseline.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace pandia {
namespace eval {

RegressionBaseline::RegressionBaseline(const sim::Machine& machine,
                                       const sim::WorkloadSpec& workload,
                                       std::vector<int> training_counts) {
  PANDIA_CHECK(!training_counts.empty());
  const MachineTopology& topo = machine.topology();
  std::vector<std::pair<int, double>> samples;  // (n, time)
  for (int n : training_counts) {
    PANDIA_CHECK(n >= 1 && n <= topo.NumHwThreads());
    const Placement placement = n <= topo.NumCores()
                                    ? Placement::OnePerCore(topo, n)
                                    : Placement::TwoPerCore(topo, n);
    const double time = machine.RunOne(workload, placement).jobs[0].completion_time;
    training_cost_ += time;
    samples.emplace_back(n, time);
    if (n == 1) {
      t1_ = time;
    }
  }
  PANDIA_CHECK_MSG(t1_ > 0.0, "training counts must include n = 1");

  // Least squares over y(n) = time(n)/t1 = (1 - p) + p/n + c*(n - 1):
  // linear in the unknowns a = (1 - p) and with basis {1, 1/n, (n-1)}.
  // Substitute p = 1 - a to reduce to two unknowns (a, c) with
  // y - 1/n = a * (1 - 1/n) + c * (n - 1).
  double sxx = 0.0, sxy = 0.0, sxz = 0.0, szz = 0.0, szy = 0.0;
  for (const auto& [n, time] : samples) {
    const double x = 1.0 - 1.0 / n;
    const double z = n - 1.0;
    const double y = time / t1_ - 1.0 / n;
    sxx += x * x;
    sxy += x * y;
    sxz += x * z;
    szz += z * z;
    szy += z * y;
  }
  // Solve the 2x2 normal equations; fall back to Amdahl-only when the
  // system is degenerate (e.g. a single multi-thread sample).
  const double det = sxx * szz - sxz * sxz;
  double a;
  if (std::fabs(det) > 1e-12) {
    a = (sxy * szz - szy * sxz) / det;
    c_ = (sxx * szy - sxz * sxy) / det;
  } else if (sxx > 1e-12) {
    a = sxy / sxx;
    c_ = 0.0;
  } else {
    a = 0.0;
    c_ = 0.0;
  }
  p_ = std::clamp(1.0 - a, 0.0, 1.0);
  c_ = std::max(c_, 0.0);
}

double RegressionBaseline::PredictTime(const Placement& placement) const {
  return PredictTime(placement.TotalThreads());
}

double RegressionBaseline::PredictTime(int threads) const {
  PANDIA_CHECK(threads >= 1);
  return t1_ * ((1.0 - p_) + p_ / threads + c_ * (threads - 1));
}

}  // namespace eval
}  // namespace pandia
