#include "src/eval/pipeline.h"

#include "src/machine_desc/generator.h"
#include "src/obs/metrics.h"
#include "src/obs/parallel_metrics.h"
#include "src/obs/trace.h"
#include "src/util/parallel.h"
#include "src/workload_desc/profiler.h"

namespace pandia {
namespace eval {
namespace {

MachineDescription GenerateDescriptionTraced(const sim::Machine& machine) {
  const obs::TraceSpan span("pipeline.machine_desc");
  return GenerateMachineDescription(machine);
}

}  // namespace

Pipeline::Pipeline(const std::string& machine_name)
    : machine_(sim::MachineByName(machine_name)),
      description_(GenerateDescriptionTraced(machine_)) {}

WorkloadDescription Pipeline::Profile(const sim::WorkloadSpec& workload) const {
  const obs::TraceSpan span("pipeline.profile");
  static obs::Counter& profiles =
      obs::MetricsRegistry::Global().counter("pipeline.profiles");
  profiles.Increment();
  const WorkloadProfiler profiler(machine_, description_);
  return profiler.Profile(workload);
}

StatusOr<WorkloadDescription> Pipeline::ProfileRobust(
    const sim::WorkloadSpec& workload, const ProfileOptions& options) const {
  const obs::TraceSpan span("pipeline.profile");
  static obs::Counter& profiles =
      obs::MetricsRegistry::Global().counter("pipeline.profiles");
  profiles.Increment();
  const WorkloadProfiler profiler(machine_, description_);
  return profiler.ProfileRobust(workload, options);
}

std::vector<WorkloadDescription> Pipeline::ProfileAll(
    const std::vector<sim::WorkloadSpec>& workloads, int jobs) const {
  const obs::TraceSpan span("pipeline.profile_all");
  obs::InstallParallelMetrics();
  std::vector<WorkloadDescription> descriptions(workloads.size());
  util::ParallelFor(workloads.size(), jobs,
                    [&](size_t i) { descriptions[i] = Profile(workloads[i]); });
  return descriptions;
}

Predictor Pipeline::MakePredictor(const WorkloadDescription& description,
                                  const PredictionOptions& options) const {
  return Predictor(description_, description, options);
}

}  // namespace eval
}  // namespace pandia
