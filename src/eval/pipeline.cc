#include "src/eval/pipeline.h"

#include "src/machine_desc/generator.h"
#include "src/workload_desc/profiler.h"

namespace pandia {
namespace eval {

Pipeline::Pipeline(const std::string& machine_name)
    : machine_(sim::MachineByName(machine_name)),
      description_(GenerateMachineDescription(machine_)) {}

WorkloadDescription Pipeline::Profile(const sim::WorkloadSpec& workload) const {
  const WorkloadProfiler profiler(machine_, description_);
  return profiler.Profile(workload);
}

Predictor Pipeline::MakePredictor(const WorkloadDescription& description,
                                  const PredictionOptions& options) const {
  return Predictor(description_, description, options);
}

}  // namespace eval
}  // namespace pandia
