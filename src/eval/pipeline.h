// Convenience wiring of the full Pandia pipeline on one simulated machine:
// machine description generation, workload profiling, and predictor
// construction. Shared by the bench binaries and examples.
#ifndef PANDIA_SRC_EVAL_PIPELINE_H_
#define PANDIA_SRC_EVAL_PIPELINE_H_

#include <string>
#include <vector>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/predictor.h"
#include "src/sim/fault_plan.h"
#include "src/sim/machine.h"
#include "src/util/status.h"
#include "src/workload_desc/description.h"
#include "src/workload_desc/profiler.h"

namespace pandia {
namespace eval {

class Pipeline {
 public:
  // Builds the simulated machine ("x5-2", "x4-2", "x3-2", "x2-4") and
  // generates its machine description from stress runs.
  explicit Pipeline(const std::string& machine_name);

  const sim::Machine& machine() const { return machine_; }
  const MachineDescription& description() const { return description_; }

  // Injects measurement faults into every subsequent profiling run (the
  // machine description was generated before faults were armed, matching a
  // one-time calibration on a healthy machine). Call before Profile*.
  void SetFaultPlan(const sim::FaultPlan& plan) { machine_.set_fault_plan(plan); }

  // Runs the six profiling runs for `workload` (§4).
  WorkloadDescription Profile(const sim::WorkloadSpec& workload) const;

  // Multi-trial robust profiling (see WorkloadProfiler::ProfileRobust);
  // reports failure as a Status instead of aborting, which makes it the
  // right entry point when a fault plan is armed.
  StatusOr<WorkloadDescription> ProfileRobust(const sim::WorkloadSpec& workload,
                                              const ProfileOptions& options) const;

  // Profiles every workload, fanning the independent profiling pipelines
  // out over `jobs` worker threads (0 defers to PANDIA_JOBS). Results are
  // returned in input order and are identical to serial Profile calls —
  // this is how the table/figure benches amortize the 22-workload suite.
  std::vector<WorkloadDescription> ProfileAll(
      const std::vector<sim::WorkloadSpec>& workloads, int jobs = 0) const;

  // Predictor for a workload description (typically from Profile(); for the
  // portability studies, from another machine's pipeline).
  Predictor MakePredictor(const WorkloadDescription& description,
                          const PredictionOptions& options = {}) const;

 private:
  sim::Machine machine_;
  MachineDescription description_;
};

}  // namespace eval
}  // namespace pandia

#endif  // PANDIA_SRC_EVAL_PIPELINE_H_
