// Evaluation harness (paper §6): measure a workload over the placement
// space on the simulated machine, predict every placement with Pandia, and
// compute the paper's accuracy metrics.
//
// Placement coverage mirrors the paper: exhaustive on the small 2-socket
// machines, a deterministic ~20% sample on the X5-2, and sampled classes on
// the 4-socket X2-4. Measured runs are production runs (Turbo Boost on, no
// background filler); predictions come from descriptions that were profiled
// with filler (§6.3) — the same asymmetry the paper lives with.
#ifndef PANDIA_SRC_EVAL_EXPERIMENT_H_
#define PANDIA_SRC_EVAL_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/predictor/predictor.h"
#include "src/sim/machine.h"
#include "src/topology/placement.h"
#include "src/util/common_options.h"
#include "src/workload_desc/description.h"

namespace pandia {
namespace eval {

struct SweepOptions {
  // Shared fan-out/cache knobs (src/util/common_options.h): per-placement
  // measure+predict pairs fan out over common.jobs worker threads (the
  // placement list, result order, and every metric are byte-identical to a
  // serial sweep), and common.use_cache memoizes predictions in
  // PredictionCache::Global() so repeated sweeps of the same
  // (machine, workload) pair skip redundant solves.
  CommonOptions common;

  // Enumerate exhaustively when the canonical space is at most this large;
  // otherwise draw `sample_count` distinct placements.
  uint64_t exhaustive_limit = 2000;
  size_t sample_count = 1200;
  uint64_t seed = 42;
  // Optional placement-class filter (Figure 12's 2-socket / 20-core / whole
  // machine classes).
  std::function<bool(const Placement&)> filter;
};

struct PlacementResult {
  Placement placement;
  double measured_time = 0.0;
  double predicted_time = 0.0;
  // Performance (1/time) normalized to the best in its own series, as in
  // Figures 1 and 10.
  double measured_norm = 0.0;
  double predicted_norm = 0.0;
};

struct SweepResult {
  std::string workload;
  std::string machine;
  std::vector<PlacementResult> placements;  // paper order (§6.1)

  // §6.1 error metrics over all placements (percent).
  double error_mean = 0.0;
  double error_median = 0.0;
  double offset_error_mean = 0.0;
  double offset_error_median = 0.0;

  // §6.1 best-placement comparison: measured performance lost by running
  // the placement Pandia predicts fastest instead of the true fastest.
  size_t best_measured_index = 0;
  size_t best_predicted_index = 0;
  double best_placement_gap_pct = 0.0;

  // Whether the fastest placement uses every hardware thread (§6.1's
  // "peak performance is not the maximum thread count" observation) —
  // exactly, and with a 1% tolerance that absorbs ties between the
  // full-machine placement and the noisy measured peak.
  bool best_uses_all_threads = false;
  bool full_machine_within_one_pct = false;
};

// Candidate placements for a machine under the options (paper order).
std::vector<Placement> SweepPlacements(const MachineTopology& topo,
                                       const SweepOptions& options);

// Measures and predicts every candidate placement.
SweepResult RunSweep(const sim::Machine& machine, const Predictor& predictor,
                     const sim::WorkloadSpec& workload, const SweepOptions& options);

// Computes the §6.1 metrics for externally produced series (exposed for
// tests and for portability studies that reuse measured times).
void ComputeMetrics(SweepResult& result);

// --- §6.3 simple pattern exploration baseline ---

struct SweepBaselineResult {
  std::string workload;
  // Total measured machine time of the compact+spread sweep divided by the
  // total time of Pandia's six profiling runs.
  double cost_ratio = 0.0;
  // Did the sweep find the best placement — i.e. produce a placement at
  // least as fast as the best of the full space (within `tolerance_pct`)?
  // With the default tolerance of 0 this is exact identity on machines
  // where the full space is enumerated.
  bool found_best = false;
  double sweep_best_gap_pct = 0.0;   // measured gap of the sweep's winner
  double pandia_best_gap_pct = 0.0;  // measured gap of Pandia's predicted winner
};

// `full_sweep` supplies the ground-truth best and Pandia's predicted best;
// the cost of Pandia's profiling is derived from the workload description
// (t1 plus the five relative run times).
SweepBaselineResult RunSweepBaseline(const sim::Machine& machine,
                                     const sim::WorkloadSpec& workload,
                                     const WorkloadDescription& description,
                                     const SweepResult& full_sweep,
                                     double tolerance_pct = 0.0);

// --- Figure 12 placement classes on the 4-socket machine ---

// At most two sockets active.
bool AtMostTwoSockets(const Placement& placement);
// At most 20 cores in use, over any number of sockets.
bool AtMostTwentyCores(const Placement& placement);

}  // namespace eval
}  // namespace pandia

#endif  // PANDIA_SRC_EVAL_EXPERIMENT_H_
