// Thread-count-only regression baseline (related work, §7).
//
// ESTIMA [9] and regression approaches [5] extrapolate a workload's scaling
// from runs at low thread counts and predict by thread count alone — they
// "do not model different thread placements or resource demands". This
// baseline reproduces that class of predictor: it fits
//
//     time(n) = t1 * ((1 - p) + p/n + c * (n - 1))
//
// to a handful of measured compact-placement runs (least squares over p
// and the linear contention term c) and predicts any placement from its
// thread count only. Comparing it against Pandia isolates the value of
// placement awareness.
#ifndef PANDIA_SRC_EVAL_REGRESSION_BASELINE_H_
#define PANDIA_SRC_EVAL_REGRESSION_BASELINE_H_

#include <vector>

#include "src/sim/machine.h"
#include "src/topology/placement.h"

namespace pandia {
namespace eval {

class RegressionBaseline {
 public:
  // Fits the model from runs at the given thread counts (one per core,
  // packed onto the lowest sockets — the cheap low-count runs such
  // approaches use).
  RegressionBaseline(const sim::Machine& machine, const sim::WorkloadSpec& workload,
                     std::vector<int> training_counts = {1, 2, 3, 4, 6});

  // Predicted time for any placement: depends only on TotalThreads().
  double PredictTime(const Placement& placement) const;
  double PredictTime(int threads) const;

  // Fitted parameters (exposed for tests).
  double t1() const { return t1_; }
  double parallel_fraction() const { return p_; }
  double contention_per_thread() const { return c_; }

  // Total machine time spent on the training runs.
  double training_cost() const { return training_cost_; }

 private:
  double t1_ = 0.0;
  double p_ = 1.0;
  double c_ = 0.0;
  double training_cost_ = 0.0;
};

}  // namespace eval
}  // namespace pandia

#endif  // PANDIA_SRC_EVAL_REGRESSION_BASELINE_H_
