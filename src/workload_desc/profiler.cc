#include "src/workload_desc/profiler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/counters/counters.h"
#include "src/predictor/predictor.h"
#include "src/stress/stress.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace pandia {
namespace {

// Relative predicted time (t_pred / t1) and the symmetric thread
// utilization for a placement under the partial model built so far.
struct PartialPrediction {
  double k = 1.0;           // known factors: predicted relative time
  double k_slowdown = 1.0;  // contention-only part of k (without Amdahl)
  double f = 1.0;           // predicted thread utilization
};

PartialPrediction PredictPartial(const MachineDescription& machine,
                                 const WorkloadDescription& partial,
                                 const Placement& placement) {
  const Predictor predictor(machine, partial);
  const Prediction prediction = predictor.Predict(placement);
  PartialPrediction result;
  result.k = 1.0 / prediction.speedup;
  result.k_slowdown = prediction.amdahl_speedup / prediction.speedup;
  // Profiling placements are symmetric, so all threads agree.
  result.f = prediction.threads.front().utilization;
  return result;
}

// Salt for the deterministic fault nonces of profiling runs, so profiling
// draws a different fault stream than any other caller of sim::Machine::Run.
constexpr uint64_t kProfileFaultSalt = 0x70726f66696c65ULL;  // "profile"

// Derived parameters further than this outside their model range are
// recorded as diagnostics; smaller excursions are ordinary measurement
// noise and clamp silently (matching the historical profiler).
constexpr double kClampTol = 1e-3;

// Exact for a single sample (no arithmetic), so the one-trial path stays
// byte-identical to the historical single-observation profiler.
double Median(std::vector<double> values) {
  PANDIA_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) {
    return values[mid];
  }
  return 0.5 * (values[mid - 1] + values[mid]);
}

// The six demand-vector rates, named for quality diagnostics.
struct DemandField {
  const char* name;
  double ResourceDemandVector::* field;
};
constexpr DemandField kDemandFields[] = {
    {"instr_rate", &ResourceDemandVector::instr_rate},
    {"l1_bw", &ResourceDemandVector::l1_bw},
    {"l2_bw", &ResourceDemandVector::l2_bw},
    {"l3_bw", &ResourceDemandVector::l3_bw},
    {"dram_local_bw", &ResourceDemandVector::dram_local_bw},
    {"dram_remote_bw", &ResourceDemandVector::dram_remote_bw},
};

}  // namespace

struct WorkloadProfiler::TimedSample {
  double time = 0.0;
  ResourceDemandVector demands;  // populated only when counters were requested
};

WorkloadProfiler::WorkloadProfiler(const sim::Machine& machine,
                                   MachineDescription description)
    : machine_(&machine), description_(std::move(description)) {}

StatusOr<WorkloadProfiler::TimedSample> WorkloadProfiler::RobustTimedRun(
    int run_index, const sim::WorkloadSpec& workload, const Placement& placement,
    const sim::WorkloadSpec* corunner, const Placement* corunner_placement,
    bool want_counters, const ProfileOptions& options,
    ProfileQuality& quality) const {
  PANDIA_CHECK(run_index >= 1 && run_index <= 6);
  std::vector<sim::JobRequest> jobs;
  jobs.push_back(sim::JobRequest{&workload, placement, /*background=*/false});
  std::vector<Placement> occupied{placement};
  if (corunner != nullptr) {
    PANDIA_CHECK(corunner_placement != nullptr);
    jobs.push_back(sim::JobRequest{corunner, *corunner_placement, /*background=*/true});
    occupied.push_back(*corunner_placement);
  }
  const sim::WorkloadSpec filler = stress::BackgroundFiller();
  const std::optional<Placement> filler_placement =
      stress::FillerPlacement(machine_->topology(), occupied);
  if (filler_placement.has_value()) {
    jobs.push_back(sim::JobRequest{&filler, *filler_placement, /*background=*/true});
  }

  ProfileRunQuality& run_quality = quality.runs[static_cast<size_t>(run_index - 1)];
  struct Trial {
    double time;
    ResourceDemandVector demands;
  };
  std::vector<Trial> trials;
  trials.reserve(static_cast<size_t>(options.trials));
  for (int trial = 0; trial < options.trials; ++trial) {
    for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
      // Deterministic reseeding as backoff: each retry draws a fresh fault
      // stream, so a failure-prone configuration is not retried into the
      // same injected failure.
      const uint64_t nonce =
          HashCombine(kProfileFaultSalt, static_cast<uint64_t>(run_index),
                      static_cast<uint64_t>(trial), static_cast<uint64_t>(attempt));
      const sim::RunResult result = machine_->Run(jobs, nonce);
      const double time = result.jobs.front().completion_time;
      if (result.failed || !std::isfinite(time) || time <= 0.0) {
        ++run_quality.retries;
        continue;
      }
      Trial sample;
      sample.time = time;
      if (want_counters) {
        const CounterView view(*machine_, result, /*job_index=*/0);
        sample.demands.instr_rate = view.Instructions() / time;
        sample.demands.l1_bw = view.L1Bytes() / time;
        sample.demands.l2_bw = view.L2Bytes() / time;
        sample.demands.l3_bw = view.L3Bytes() / time;
        const int home = 0;  // profiling run 1 pins the thread to socket 0
        sample.demands.dram_local_bw = view.DramBytesOnNode(home) / time;
        double remote = 0.0;
        for (int s = 0; s < description_.topo.num_sockets; ++s) {
          if (s != home) {
            remote += view.DramBytesOnNode(s);
          }
        }
        sample.demands.dram_remote_bw = remote / time;
      }
      trials.push_back(sample);
      break;
    }
  }
  if (trials.empty()) {
    return Status::Unavailable(
        StrFormat("profiling run %d of '%s': all %d trials failed within %d "
                  "attempts each",
                  run_index, workload.name.c_str(), options.trials,
                  options.max_attempts));
  }

  // MAD outlier filter on the trial times (needs at least 3 samples to have
  // a meaningful notion of "the rest agree").
  std::vector<double> times;
  times.reserve(trials.size());
  for (const Trial& t : trials) {
    times.push_back(t.time);
  }
  const double center = Median(times);
  std::vector<Trial> kept;
  if (trials.size() >= 3) {
    std::vector<double> deviations;
    deviations.reserve(times.size());
    for (double t : times) {
      deviations.push_back(std::abs(t - center));
    }
    const double sigma = 1.4826 * Median(deviations);  // MAD -> normal sigma
    run_quality.rel_spread = center > 0.0 ? sigma / center : 0.0;
    if (sigma > 1e-12 * center) {
      for (const Trial& t : trials) {
        if (std::abs(t.time - center) <= 3.0 * sigma) {
          kept.push_back(t);
        } else {
          ++run_quality.outliers_rejected;
        }
      }
    }
  }
  if (kept.empty()) {
    kept = trials;
    run_quality.outliers_rejected = 0;
  }
  run_quality.trials = static_cast<int>(kept.size());

  TimedSample aggregate;
  {
    std::vector<double> kept_times;
    kept_times.reserve(kept.size());
    for (const Trial& t : kept) {
      kept_times.push_back(t.time);
    }
    aggregate.time = Median(kept_times);
  }
  if (want_counters) {
    for (const DemandField& field : kDemandFields) {
      std::vector<double> values;
      values.reserve(kept.size());
      int zeros = 0;
      for (const Trial& t : kept) {
        const double v = t.demands.*(field.field);
        if (v == 0.0) {
          ++zeros;
        }
        values.push_back(v);
      }
      // A dropped counter reads exactly zero; a genuinely idle counter reads
      // zero in every trial. When both zero and non-zero readings coexist,
      // impute the zeros from the surviving trials.
      if (zeros > 0 && zeros < static_cast<int>(values.size())) {
        values.erase(std::remove(values.begin(), values.end(), 0.0), values.end());
        quality.counters_imputed += zeros;
        quality.diagnostics.push_back(
            StrFormat("run %d: counter '%s' read zero in %d of %d trials; "
                      "imputed from the remaining trials",
                      run_index, field.name, zeros, run_quality.trials));
      }
      aggregate.demands.*(field.field) = Median(std::move(values));
    }
  }
  return aggregate;
}

int WorkloadProfiler::ChooseProfileThreads(const WorkloadDescription& partial) const {
  const MachineTopology& topo = description_.topo;
  // Contention-free by construction requires one thread per core on one
  // socket; find the largest even count whose naive demands oversubscribe
  // nothing (checked with the partial model itself).
  WorkloadDescription probe = partial;
  probe.parallel_fraction = 1.0;  // not yet known; irrelevant to saturation
  probe.inter_socket_overhead = 0.0;
  probe.load_balance = 1.0;
  probe.burstiness = 0.0;
  const Predictor predictor(description_, probe);
  const ResourceIndex index(topo);
  int best = 2;
  for (int n = 2; n <= topo.cores_per_socket; n += 2) {
    const Prediction prediction = predictor.Predict(Placement::OnePerCore(topo, n));
    // One thread per core cannot oversubscribe private per-core resources
    // beyond what the solo run already used, so only the shared resources
    // (aggregate L3, memory channels, interconnect) gate the choice. A
    // small tolerance absorbs measurement noise for workloads whose solo
    // demand already sits at a capacity.
    const std::vector<double> caps = description_.Capacities(
        Placement::OnePerCore(topo, n).PerCore());
    bool saturated = false;
    for (int r = 0; r < index.Count(); ++r) {
      const ResourceKind kind = index.KindOf(r);
      if (kind != ResourceKind::kL3Agg && kind != ResourceKind::kDram &&
          kind != ResourceKind::kLink) {
        continue;
      }
      if (prediction.resource_load[r] > caps[r] * 1.02) {
        saturated = true;
        break;
      }
    }
    if (saturated) {
      break;
    }
    best = n;
  }
  return best;
}

WorkloadDescription WorkloadProfiler::Profile(const sim::WorkloadSpec& workload) const {
  StatusOr<WorkloadDescription> desc = ProfileRobust(workload, ProfileOptions{});
  // With one trial and no active fault plan every profiling run succeeds, so
  // a failure here is a programming error (e.g. a machine without SMT from
  // inside the evaluation pipeline).
  PANDIA_CHECK_MSG(desc.ok(), desc.status().message().c_str());
  return std::move(*desc);
}

StatusOr<WorkloadDescription> WorkloadProfiler::ProfileRobust(
    const sim::WorkloadSpec& workload, const ProfileOptions& options) const {
  const MachineTopology& topo = description_.topo;
  if (topo.threads_per_core < 2) {
    return Status::FailedPrecondition(
        StrFormat("machine '%s' has threads_per_core = %d; profiling runs 4-6 "
                  "need SMT for co-location",
                  topo.name.c_str(), topo.threads_per_core));
  }
  if (options.trials < 1 || options.max_attempts < 1) {
    return Status::InvalidArgument(
        StrFormat("profile options need trials >= 1 and max_attempts >= 1, got "
                  "trials=%d max_attempts=%d",
                  options.trials, options.max_attempts));
  }
  WorkloadDescription desc;
  desc.workload = workload.name;
  desc.machine = topo.name;
  desc.memory_policy = workload.memory_policy;  // run configuration

  // ---- Run 1: single thread -> t1 and demand vector (§4.1) ----
  {
    const Placement placement = Placement::OnePerCore(topo, 1);
    StatusOr<TimedSample> run1 =
        RobustTimedRun(1, workload, placement, nullptr, nullptr,
                       /*want_counters=*/true, options, desc.quality);
    PANDIA_RETURN_IF_ERROR(run1.status());
    desc.t1 = run1->time;
    desc.demands = run1->demands;
  }

  // ---- Run 2: contention-free scaling -> parallel fraction (§4.2) ----
  const int n2 = ChooseProfileThreads(desc);
  desc.profile_threads = n2;
  const Placement run2_placement = Placement::OnePerCore(topo, n2);
  {
    StatusOr<TimedSample> run2 =
        RobustTimedRun(2, workload, run2_placement, nullptr, nullptr,
                       /*want_counters=*/false, options, desc.quality);
    PANDIA_RETURN_IF_ERROR(run2.status());
    desc.r2 = run2->time / desc.t1;
    // u2 = 1 - p + p/n  =>  p = (1 - u2) / (1 - 1/n).
    const double u2 = desc.r2;
    const double p = (1.0 - u2) / (1.0 - 1.0 / n2);
    desc.parallel_fraction = std::clamp(p, 0.0, 1.0);
    if (p < -kClampTol || p > 1.0 + kClampTol) {
      desc.quality.diagnostics.push_back(
          StrFormat("parallel_fraction %.4g outside [0, 1]; clamped to %g", p,
                    desc.parallel_fraction));
    }
  }

  // ---- Run 3: threads split over two sockets -> o_s (§4.3) ----
  if (topo.num_sockets >= 2) {
    std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
    loads[0] = SocketLoad{n2 / 2, 0};
    loads[1] = SocketLoad{n2 - n2 / 2, 0};
    const Placement run3_placement = Placement::FromSocketLoads(topo, loads);
    StatusOr<TimedSample> run3 =
        RobustTimedRun(3, workload, run3_placement, nullptr, nullptr,
                       /*want_counters=*/false, options, desc.quality);
    PANDIA_RETURN_IF_ERROR(run3.status());
    desc.r3 = run3->time / desc.t1;
    const PartialPrediction partial = PredictPartial(description_, desc, run3_placement);
    const double u3 = desc.r3 / partial.k;
    // u3 = 1 + (n/2) * o_s / f3  =>  o_s = (u3 - 1) * f3 / (n/2).
    const double os = (u3 - 1.0) * partial.f / (n2 / 2.0);
    desc.inter_socket_overhead = std::max(os, 0.0);
    if (os < -kClampTol) {
      desc.quality.diagnostics.push_back(StrFormat(
          "inter_socket_overhead %.4g is negative; clamped to 0", os));
    }
  }

  // ---- Runs 4 and 5: slowdown sensitivity -> load balancing l (§4.4) ----
  {
    const sim::WorkloadSpec cpu = stress::CpuStressor();
    // Run 4: every workload thread shares its core with a CPU-bound loop.
    const Placement all_corunners = Placement::OnePerCore(topo, n2);
    StatusOr<TimedSample> run4 =
        RobustTimedRun(4, workload, run2_placement, &cpu, &all_corunners,
                       /*want_counters=*/false, options, desc.quality);
    PANDIA_RETURN_IF_ERROR(run4.status());
    desc.r4 = run4->time / desc.t1;
    // Run 5: only the first thread is slowed.
    const Placement one_corunner = Placement::OnePerCore(topo, 1);
    StatusOr<TimedSample> run5 =
        RobustTimedRun(5, workload, run2_placement, &cpu, &one_corunner,
                       /*want_counters=*/false, options, desc.quality);
    PANDIA_RETURN_IF_ERROR(run5.status());
    desc.r5 = run5->time / desc.t1;

    const double slow = std::max(desc.r4 / desc.r2, 1.0);  // per-thread si in run 4
    const double p = desc.parallel_fraction;
    // Extremes for n-1 threads at s=1 and one thread at s=slow (§4.4).
    const double s_lock = (1.0 - p) + p * slow;
    const double s_bal = (1.0 - p) + n2 * p / ((n2 - 1) + 1.0 / slow);
    const double s_measured = desc.r5 / desc.r2;
    if (s_lock - s_bal > 1e-9) {
      const double l = (s_lock - s_measured) / (s_lock - s_bal);
      desc.load_balance = std::clamp(l, 0.0, 1.0);
      if (l < -kClampTol || l > 1.0 + kClampTol) {
        desc.quality.diagnostics.push_back(
            StrFormat("load_balance %.4g outside [0, 1]; clamped to %g", l,
                      desc.load_balance));
      }
    } else {
      // The workload is insensitive to a single slow thread; l is
      // unidentifiable and has negligible effect. Stay neutral.
      desc.load_balance = 0.5;
    }
  }

  // ---- Run 6: threads packed two per core -> burstiness b (§4.5) ----
  {
    std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
    loads[0] = SocketLoad{0, n2 / 2};
    const Placement run6_placement = Placement::FromSocketLoads(topo, loads);
    StatusOr<TimedSample> run6 =
        RobustTimedRun(6, workload, run6_placement, nullptr, nullptr,
                       /*want_counters=*/false, options, desc.quality);
    PANDIA_RETURN_IF_ERROR(run6.status());
    desc.r6 = run6->time / desc.t1;
    const PartialPrediction partial = PredictPartial(description_, desc, run6_placement);
    // u6 must stay comparable to u2 = r2 (both contain the Amdahl scaling),
    // so only the contention part of the steps-1..4 prediction divides out.
    const double u6 = desc.r6 / partial.k_slowdown;
    // b = (1/f6) * (u6/u2 - 1), with u2 = r2 since k2 = 1 (§4.5).
    const double b = (u6 / desc.r2 - 1.0) / partial.f;
    desc.burstiness = std::max(b, 0.0);
    if (b < -kClampTol) {
      desc.quality.diagnostics.push_back(
          StrFormat("burstiness %.4g is negative; clamped to 0", b));
    }
  }

  return desc;
}

}  // namespace pandia
