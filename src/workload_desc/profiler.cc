#include "src/workload_desc/profiler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/counters/counters.h"
#include "src/predictor/predictor.h"
#include "src/stress/stress.h"
#include "src/util/check.h"

namespace pandia {
namespace {

// Relative predicted time (t_pred / t1) and the symmetric thread
// utilization for a placement under the partial model built so far.
struct PartialPrediction {
  double k = 1.0;           // known factors: predicted relative time
  double k_slowdown = 1.0;  // contention-only part of k (without Amdahl)
  double f = 1.0;           // predicted thread utilization
};

PartialPrediction PredictPartial(const MachineDescription& machine,
                                 const WorkloadDescription& partial,
                                 const Placement& placement) {
  const Predictor predictor(machine, partial);
  const Prediction prediction = predictor.Predict(placement);
  PartialPrediction result;
  result.k = 1.0 / prediction.speedup;
  result.k_slowdown = prediction.amdahl_speedup / prediction.speedup;
  // Profiling placements are symmetric, so all threads agree.
  result.f = prediction.threads.front().utilization;
  return result;
}

}  // namespace

WorkloadProfiler::WorkloadProfiler(const sim::Machine& machine,
                                   MachineDescription description)
    : machine_(&machine), description_(std::move(description)) {}

double WorkloadProfiler::TimedRun(const sim::WorkloadSpec& workload,
                                  const Placement& placement,
                                  const sim::WorkloadSpec* corunner,
                                  const Placement* corunner_placement) const {
  std::vector<sim::JobRequest> jobs;
  jobs.push_back(sim::JobRequest{&workload, placement, /*background=*/false});
  std::vector<Placement> occupied{placement};
  if (corunner != nullptr) {
    PANDIA_CHECK(corunner_placement != nullptr);
    jobs.push_back(sim::JobRequest{corunner, *corunner_placement, /*background=*/true});
    occupied.push_back(*corunner_placement);
  }
  const sim::WorkloadSpec filler = stress::BackgroundFiller();
  const std::optional<Placement> filler_placement =
      stress::FillerPlacement(machine_->topology(), occupied);
  if (filler_placement.has_value()) {
    jobs.push_back(sim::JobRequest{&filler, *filler_placement, /*background=*/true});
  }
  const sim::RunResult result = machine_->Run(jobs);
  return result.jobs.front().completion_time;
}

int WorkloadProfiler::ChooseProfileThreads(const WorkloadDescription& partial) const {
  const MachineTopology& topo = description_.topo;
  // Contention-free by construction requires one thread per core on one
  // socket; find the largest even count whose naive demands oversubscribe
  // nothing (checked with the partial model itself).
  WorkloadDescription probe = partial;
  probe.parallel_fraction = 1.0;  // not yet known; irrelevant to saturation
  probe.inter_socket_overhead = 0.0;
  probe.load_balance = 1.0;
  probe.burstiness = 0.0;
  const Predictor predictor(description_, probe);
  const ResourceIndex index(topo);
  int best = 2;
  for (int n = 2; n <= topo.cores_per_socket; n += 2) {
    const Prediction prediction = predictor.Predict(Placement::OnePerCore(topo, n));
    // One thread per core cannot oversubscribe private per-core resources
    // beyond what the solo run already used, so only the shared resources
    // (aggregate L3, memory channels, interconnect) gate the choice. A
    // small tolerance absorbs measurement noise for workloads whose solo
    // demand already sits at a capacity.
    const std::vector<double> caps = description_.Capacities(
        Placement::OnePerCore(topo, n).PerCore());
    bool saturated = false;
    for (int r = 0; r < index.Count(); ++r) {
      const ResourceKind kind = index.KindOf(r);
      if (kind != ResourceKind::kL3Agg && kind != ResourceKind::kDram &&
          kind != ResourceKind::kLink) {
        continue;
      }
      if (prediction.resource_load[r] > caps[r] * 1.02) {
        saturated = true;
        break;
      }
    }
    if (saturated) {
      break;
    }
    best = n;
  }
  return best;
}

WorkloadDescription WorkloadProfiler::Profile(const sim::WorkloadSpec& workload) const {
  const MachineTopology& topo = description_.topo;
  PANDIA_CHECK_MSG(topo.threads_per_core >= 2,
                   "profiling runs 4-6 need SMT for co-location");
  WorkloadDescription desc;
  desc.workload = workload.name;
  desc.machine = topo.name;
  desc.memory_policy = workload.memory_policy;  // run configuration

  // ---- Run 1: single thread -> t1 and demand vector (§4.1) ----
  {
    std::vector<sim::JobRequest> jobs;
    const Placement placement = Placement::OnePerCore(topo, 1);
    jobs.push_back(sim::JobRequest{&workload, placement, /*background=*/false});
    const sim::WorkloadSpec filler = stress::BackgroundFiller();
    const std::optional<Placement> filler_placement =
        stress::FillerPlacement(topo, std::span(&placement, 1));
    PANDIA_CHECK(filler_placement.has_value());
    jobs.push_back(sim::JobRequest{&filler, *filler_placement, /*background=*/true});
    const sim::RunResult result = machine_->Run(jobs);
    const CounterView view(*machine_, result, /*job_index=*/0);
    desc.t1 = view.CompletionTime();
    PANDIA_CHECK(desc.t1 > 0.0);
    desc.demands.instr_rate = view.Instructions() / desc.t1;
    desc.demands.l1_bw = view.L1Bytes() / desc.t1;
    desc.demands.l2_bw = view.L2Bytes() / desc.t1;
    desc.demands.l3_bw = view.L3Bytes() / desc.t1;
    const int home = 0;  // run 1 pins the thread to socket 0
    desc.demands.dram_local_bw = view.DramBytesOnNode(home) / desc.t1;
    double remote = 0.0;
    for (int s = 0; s < topo.num_sockets; ++s) {
      if (s != home) {
        remote += view.DramBytesOnNode(s);
      }
    }
    desc.demands.dram_remote_bw = remote / desc.t1;
  }

  // ---- Run 2: contention-free scaling -> parallel fraction (§4.2) ----
  const int n2 = ChooseProfileThreads(desc);
  desc.profile_threads = n2;
  const Placement run2_placement = Placement::OnePerCore(topo, n2);
  const double t2 = TimedRun(workload, run2_placement, nullptr, nullptr);
  desc.r2 = t2 / desc.t1;
  {
    // u2 = 1 - p + p/n  =>  p = (1 - u2) / (1 - 1/n).
    const double u2 = desc.r2;
    const double p = (1.0 - u2) / (1.0 - 1.0 / n2);
    desc.parallel_fraction = std::clamp(p, 0.0, 1.0);
  }

  // ---- Run 3: threads split over two sockets -> o_s (§4.3) ----
  if (topo.num_sockets >= 2) {
    std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
    loads[0] = SocketLoad{n2 / 2, 0};
    loads[1] = SocketLoad{n2 - n2 / 2, 0};
    const Placement run3_placement = Placement::FromSocketLoads(topo, loads);
    const double t3 = TimedRun(workload, run3_placement, nullptr, nullptr);
    desc.r3 = t3 / desc.t1;
    const PartialPrediction partial = PredictPartial(description_, desc, run3_placement);
    const double u3 = desc.r3 / partial.k;
    // u3 = 1 + (n/2) * o_s / f3  =>  o_s = (u3 - 1) * f3 / (n/2).
    const double os = (u3 - 1.0) * partial.f / (n2 / 2.0);
    desc.inter_socket_overhead = std::max(os, 0.0);
  }

  // ---- Runs 4 and 5: slowdown sensitivity -> load balancing l (§4.4) ----
  {
    const sim::WorkloadSpec cpu = stress::CpuStressor();
    // Run 4: every workload thread shares its core with a CPU-bound loop.
    const Placement all_corunners = Placement::OnePerCore(topo, n2);
    const double t4 = TimedRun(workload, run2_placement, &cpu, &all_corunners);
    desc.r4 = t4 / desc.t1;
    // Run 5: only the first thread is slowed.
    const Placement one_corunner = Placement::OnePerCore(topo, 1);
    const double t5 = TimedRun(workload, run2_placement, &cpu, &one_corunner);
    desc.r5 = t5 / desc.t1;

    const double slow = std::max(desc.r4 / desc.r2, 1.0);  // per-thread si in run 4
    const double p = desc.parallel_fraction;
    // Extremes for n-1 threads at s=1 and one thread at s=slow (§4.4).
    const double s_lock = (1.0 - p) + p * slow;
    const double s_bal = (1.0 - p) + n2 * p / ((n2 - 1) + 1.0 / slow);
    const double s_measured = desc.r5 / desc.r2;
    if (s_lock - s_bal > 1e-9) {
      desc.load_balance = std::clamp((s_lock - s_measured) / (s_lock - s_bal), 0.0, 1.0);
    } else {
      // The workload is insensitive to a single slow thread; l is
      // unidentifiable and has negligible effect. Stay neutral.
      desc.load_balance = 0.5;
    }
  }

  // ---- Run 6: threads packed two per core -> burstiness b (§4.5) ----
  {
    std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
    loads[0] = SocketLoad{0, n2 / 2};
    const Placement run6_placement = Placement::FromSocketLoads(topo, loads);
    const double t6 = TimedRun(workload, run6_placement, nullptr, nullptr);
    desc.r6 = t6 / desc.t1;
    const PartialPrediction partial = PredictPartial(description_, desc, run6_placement);
    // u6 must stay comparable to u2 = r2 (both contain the Amdahl scaling),
    // so only the contention part of the steps-1..4 prediction divides out.
    const double u6 = desc.r6 / partial.k_slowdown;
    // b = (1/f6) * (u6/u2 - 1), with u2 = r2 since k2 = 1 (§4.5).
    const double b = (u6 / desc.r2 - 1.0) / partial.f;
    desc.burstiness = std::max(b, 0.0);
  }

  return desc;
}

}  // namespace pandia
