#include "src/workload_desc/online_profiler.h"

#include <algorithm>
#include <cmath>

#include "src/predictor/predictor.h"
#include "src/util/check.h"

namespace pandia {
namespace {

enum class EpochKind {
  kSingle,       // one thread
  kParallel,     // one socket, one per core, contention-free
  kCrossSocket,  // even one-per-core split over two sockets
  kSmt,          // one socket, every core doubled
  kOther,
};

EpochKind Classify(const Placement& placement) {
  if (placement.TotalThreads() == 1) {
    return EpochKind::kSingle;
  }
  const std::vector<SocketLoad> loads = placement.SocketLoads();
  int active = 0;
  int singles = 0;
  int doubles = 0;
  for (const SocketLoad& load : loads) {
    active += load.Threads() > 0 ? 1 : 0;
    singles += load.singles;
    doubles += load.doubles;
  }
  if (active == 1 && doubles == 0) {
    return EpochKind::kParallel;
  }
  if (active == 1 && singles == 0 && doubles >= 1) {
    return EpochKind::kSmt;
  }
  if (active == 2 && doubles == 0) {
    // Even split over exactly two sockets.
    std::vector<int> counts;
    for (const SocketLoad& load : loads) {
      if (load.Threads() > 0) {
        counts.push_back(load.Threads());
      }
    }
    if (std::abs(counts[0] - counts[1]) <= 0) {
      return EpochKind::kCrossSocket;
    }
  }
  return EpochKind::kOther;
}

// Predicted relative time, contention-only slowdown, and utilization under
// the partial description (as in the offline profiler's k_x factors).
struct Partial {
  double k = 1.0;
  double k_slowdown = 1.0;
  double f = 1.0;
};

Partial PredictPartial(const MachineDescription& machine,
                       const WorkloadDescription& description,
                       const Placement& placement) {
  const Predictor predictor(machine, description);
  const Prediction prediction = predictor.Predict(placement);
  return Partial{1.0 / prediction.speedup,
                 prediction.amdahl_speedup / prediction.speedup,
                 prediction.threads.front().utilization};
}

// True when the naive demands of n one-per-core threads fit every shared
// resource, so an Amdahl estimate is uncontaminated.
bool ContentionFree(const MachineDescription& machine,
                    const WorkloadDescription& description,
                    const Placement& placement) {
  WorkloadDescription probe = description;
  probe.parallel_fraction = 1.0;
  probe.inter_socket_overhead = 0.0;
  probe.burstiness = 0.0;
  probe.load_balance = 1.0;
  const Predictor predictor(machine, probe);
  const Prediction prediction = predictor.Predict(placement);
  const ResourceIndex index(machine.topo);
  const std::vector<double> caps = machine.Capacities(placement.PerCore());
  for (int r = 0; r < index.Count(); ++r) {
    const ResourceKind kind = index.KindOf(r);
    if (kind != ResourceKind::kL3Agg && kind != ResourceKind::kDram &&
        kind != ResourceKind::kLink) {
      continue;
    }
    if (prediction.resource_load[r] > caps[r] * 1.02) {
      return false;
    }
  }
  return true;
}

}  // namespace

OnlineProfiler::OnlineProfiler(MachineDescription machine, std::string workload_name,
                               MemoryPolicy policy)
    : machine_(std::move(machine)) {
  description_.workload = std::move(workload_name);
  description_.machine = machine_.topo.name;
  description_.memory_policy = policy;
  description_.load_balance = 0.5;  // unobservable without perturbation
  description_.inter_socket_overhead = 0.0;
  description_.burstiness = 0.0;
}

bool OnlineProfiler::Observe(const EpochObservation& epoch) {
  PANDIA_CHECK(epoch.time > 0.0);
  switch (Classify(epoch.placement)) {
    case EpochKind::kSingle: {
      description_.t1 = Refine(description_.t1, epoch.time, epochs_single_);
      ResourceDemandVector sample;
      sample.instr_rate = epoch.instructions / epoch.time;
      sample.l1_bw = epoch.l1_bytes / epoch.time;
      sample.l2_bw = epoch.l2_bytes / epoch.time;
      sample.l3_bw = epoch.l3_bytes / epoch.time;
      sample.dram_local_bw = epoch.dram_local_bytes / epoch.time;
      sample.dram_remote_bw = epoch.dram_remote_bytes / epoch.time;
      ResourceDemandVector& d = description_.demands;
      d.instr_rate = Refine(d.instr_rate, sample.instr_rate, epochs_single_);
      d.l1_bw = Refine(d.l1_bw, sample.l1_bw, epochs_single_);
      d.l2_bw = Refine(d.l2_bw, sample.l2_bw, epochs_single_);
      d.l3_bw = Refine(d.l3_bw, sample.l3_bw, epochs_single_);
      d.dram_local_bw = Refine(d.dram_local_bw, sample.dram_local_bw, epochs_single_);
      d.dram_remote_bw =
          Refine(d.dram_remote_bw, sample.dram_remote_bw, epochs_single_);
      ++epochs_single_;
      return true;
    }
    case EpochKind::kParallel: {
      if (!demands_known()) {
        return false;  // needs t1 first (§4 step ordering)
      }
      if (!ContentionFree(machine_, description_, epoch.placement)) {
        return false;  // a contended epoch would contaminate Amdahl's law
      }
      const int n = epoch.placement.TotalThreads();
      const double u2 = epoch.time / description_.t1;
      const double p = std::clamp((1.0 - u2) / (1.0 - 1.0 / n), 0.0, 1.0);
      description_.parallel_fraction =
          Refine(parallel_fraction_known() ? description_.parallel_fraction : 0.0, p,
                 epochs_parallel_);
      ++epochs_parallel_;
      return true;
    }
    case EpochKind::kCrossSocket: {
      if (!demands_known() || !parallel_fraction_known()) {
        return false;
      }
      WorkloadDescription base = description_;
      base.inter_socket_overhead = 0.0;
      const Partial partial = PredictPartial(machine_, base, epoch.placement);
      const double u3 = epoch.time / description_.t1 / partial.k;
      const int n = epoch.placement.TotalThreads();
      const double os = std::max(0.0, (u3 - 1.0) * partial.f / (n / 2.0));
      description_.inter_socket_overhead =
          Refine(inter_socket_overhead_known() ? description_.inter_socket_overhead
                                               : 0.0,
                 os, epochs_cross_socket_);
      ++epochs_cross_socket_;
      return true;
    }
    case EpochKind::kSmt: {
      if (!demands_known() || !parallel_fraction_known()) {
        return false;
      }
      WorkloadDescription base = description_;
      base.burstiness = 0.0;
      const Partial partial = PredictPartial(machine_, base, epoch.placement);
      const int n = epoch.placement.TotalThreads();
      // Reference: the Amdahl time for n threads (an online runtime has no
      // dedicated contention-free run 2 at this thread count).
      const double p = description_.parallel_fraction;
      const double amdahl_time = (1.0 - p) + p / n;
      const double u6 = epoch.time / description_.t1 / partial.k_slowdown;
      const double b = std::max(0.0, (u6 / amdahl_time - 1.0) / partial.f);
      description_.burstiness =
          Refine(burstiness_known() ? description_.burstiness : 0.0, b, epochs_smt_);
      ++epochs_smt_;
      return true;
    }
    case EpochKind::kOther:
      return false;
  }
  return false;
}

std::optional<Placement> OnlineProfiler::SuggestNextProbe() const {
  const MachineTopology& topo = machine_.topo;
  if (!demands_known()) {
    return Placement::OnePerCore(topo, 1);
  }
  // Largest even same-socket one-per-core count that stays contention-free
  // (mirrors the offline profiler's run-2 choice).
  int n2 = 2;
  for (int n = 2; n <= topo.cores_per_socket; n += 2) {
    if (ContentionFree(machine_, description_, Placement::OnePerCore(topo, n))) {
      n2 = n;
    } else {
      break;
    }
  }
  if (!parallel_fraction_known()) {
    return Placement::OnePerCore(topo, n2);
  }
  if (!inter_socket_overhead_known() && topo.num_sockets >= 2) {
    std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
    loads[0] = SocketLoad{n2 / 2, 0};
    loads[1] = SocketLoad{n2 / 2, 0};
    return Placement::FromSocketLoads(topo, loads);
  }
  if (!burstiness_known() && topo.threads_per_core >= 2) {
    std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
    loads[0] = SocketLoad{0, n2 / 2};
    return Placement::FromSocketLoads(topo, loads);
  }
  return std::nullopt;
}

bool OnlineProfiler::ObserveRun(const sim::Machine& machine,
                                const sim::WorkloadSpec& workload,
                                const Placement& placement) {
  const sim::RunResult result = machine.RunOne(workload, placement);
  const CounterView view(machine, result, 0);
  EpochObservation epoch{placement};
  epoch.time = view.CompletionTime();
  epoch.instructions = view.Instructions();
  epoch.l1_bytes = view.L1Bytes();
  epoch.l2_bytes = view.L2Bytes();
  epoch.l3_bytes = view.L3Bytes();
  const int home = placement.ThreadLocations().front().socket;
  epoch.dram_local_bytes = view.DramBytesOnNode(home);
  double remote = 0.0;
  for (int s = 0; s < machine.topology().num_sockets; ++s) {
    if (s != home) {
      remote += view.DramBytesOnNode(s);
    }
  }
  epoch.dram_remote_bytes = remote;
  return Observe(epoch);
}

}  // namespace pandia
