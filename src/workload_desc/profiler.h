// Workload description generator (paper §4): runs a workload six times in
// carefully chosen configurations and extracts the five model properties.
//
//   Run 1: one thread                        -> t1 and the demand vector d
//   Run 2: n2 threads, one per core, one     -> parallel fraction p via
//          socket, no oversubscription          Amdahl's law
//   Run 3: n2 threads split across two       -> inter-socket overhead o_s
//          sockets
//   Run 4: run 2 placement, every thread     -> with run 5: load-balancing
//          sharing its core with a CPU          factor l
//          stressor
//   Run 5: run 2 placement, one thread
//          sharing its core with a stressor
//   Run 6: n2 threads packed two per core    -> core burstiness b
//
// Idle cores are filled with a background load in every run so Turbo Boost
// stays at its all-core bin (§6.3). Steps 3 and 6 divide out the slowdown
// k_x that the partial Pandia model already predicts, so each step measures
// only its own new effect (§4.1).
//
// Robust profiling: real measurements are noisy, so each of the six runs
// can be repeated `ProfileOptions::trials` times. Failed runs (crashed or
// evicted benchmarks, injected via sim::FaultPlan) are retried with a
// bounded attempt budget under deterministic reseeding; trial times pass a
// MAD outlier filter and aggregate by median; counter readings dropped in
// some trials are imputed from the surviving ones. Every repair and every
// clamped derived parameter is recorded in the description's ProfileQuality
// report. With one trial and no faults the output is byte-identical to the
// single-observation profiler.
//
// The profiler sees the workload as an opaque handle: it reads only run
// times and the counter facade, plus the memory policy (run configuration).
#ifndef PANDIA_SRC_WORKLOAD_DESC_PROFILER_H_
#define PANDIA_SRC_WORKLOAD_DESC_PROFILER_H_

#include "src/machine_desc/machine_description.h"
#include "src/sim/machine.h"
#include "src/util/common_options.h"
#include "src/util/status.h"
#include "src/workload_desc/description.h"

namespace pandia {

struct ProfileOptions {
  // Shared fan-out knobs (src/util/common_options.h): common.jobs drives
  // multi-workload profiling fan-out (eval::Pipeline::ProfileAll); the six
  // runs of a single workload are sequential by construction (§4).
  CommonOptions common;

  // Trials per profiling run; the aggregate is the median of surviving
  // trials. 1 reproduces the historical single-observation behaviour.
  int trials = 1;
  // Attempt budget per trial: a failed run is retried with a fresh
  // deterministic nonce up to this many times before the trial is dropped.
  int max_attempts = 5;
};

class WorkloadProfiler {
 public:
  WorkloadProfiler(const sim::Machine& machine, MachineDescription description);

  // Single-observation profiling (trials = 1). The clean path cannot fail;
  // under an active fault plan prefer ProfileRobust, which reports errors
  // instead of aborting.
  WorkloadDescription Profile(const sim::WorkloadSpec& workload) const;

  // Multi-trial robust profiling. Fails (without aborting) when a profiling
  // run lost every trial to run failures or produced no usable time.
  StatusOr<WorkloadDescription> ProfileRobust(const sim::WorkloadSpec& workload,
                                              const ProfileOptions& options) const;

  // The run-2 thread count chosen for a workload with the given measured
  // demand vector: the largest even number of single-socket one-per-core
  // threads that oversubscribes no resource (§4.2). Exposed for tests.
  int ChooseProfileThreads(const WorkloadDescription& partial) const;

 private:
  struct TimedSample;

  // Executes the workload (plus optional co-runner) with idle cores filled,
  // `options.trials` times with retry-on-failure; aggregates foreground
  // completion time (and, when `want_counters`, per-resource consumption
  // rates) and records quality into `quality.runs[run_index - 1]`.
  StatusOr<TimedSample> RobustTimedRun(int run_index, const sim::WorkloadSpec& workload,
                                       const Placement& placement,
                                       const sim::WorkloadSpec* corunner,
                                       const Placement* corunner_placement,
                                       bool want_counters,
                                       const ProfileOptions& options,
                                       ProfileQuality& quality) const;

  const sim::Machine* machine_;
  MachineDescription description_;
};

}  // namespace pandia

#endif  // PANDIA_SRC_WORKLOAD_DESC_PROFILER_H_
