// Workload description (paper §4, Figure 4).
//
// Produced from the six profiling runs; machine-specific (though §6.1 shows
// some portability across similar machines). This is the complete input
// that Pandia's predictor has about a workload — five measured properties
// plus the memory policy the workload is launched with (run configuration,
// not a measurement).
#ifndef PANDIA_SRC_WORKLOAD_DESC_DESCRIPTION_H_
#define PANDIA_SRC_WORKLOAD_DESC_DESCRIPTION_H_

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "src/topology/memory_policy.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace pandia {

// Quality report for one of the six profiling runs (src/workload_desc/
// profiler.h) under multi-trial robust profiling.
struct ProfileRunQuality {
  int trials = 0;             // successful trials aggregated
  int retries = 0;            // extra attempts consumed by injected/real run failures
  int outliers_rejected = 0;  // trials discarded by the MAD outlier filter
  double rel_spread = 0.0;    // MAD of trial times relative to their median
};

// Per-description profiling quality: how trustworthy each measured run and
// each derived parameter is. Attached to WorkloadDescription by the
// profiler; intentionally NOT serialized (it describes one profiling
// session, not the workload), so stored descriptions are byte-identical to
// single-trial output.
struct ProfileQuality {
  std::array<ProfileRunQuality, 6> runs;  // §4 runs 1..6 at index run-1
  int counters_imputed = 0;  // dropped counter readings replaced from other trials
  // Human-readable records of every clamp, imputation, and unidentifiable
  // parameter encountered while deriving the description.
  std::vector<std::string> diagnostics;

  int total_retries() const {
    int total = 0;
    for (const ProfileRunQuality& run : runs) {
      total += run.retries;
    }
    return total;
  }
  // True when any measurement was repaired or any derived parameter clamped.
  bool degraded() const {
    if (counters_imputed > 0 || !diagnostics.empty()) {
      return true;
    }
    for (const ProfileRunQuality& run : runs) {
      if (run.retries > 0 || run.outliers_rejected > 0) {
        return true;
      }
    }
    return false;
  }
};

// Step 1: single-thread resource demand rates (measured over t1).
struct ResourceDemandVector {
  double instr_rate = 0.0;      // instructions per unit time
  double l1_bw = 0.0;           // bytes per unit time on the private L1 link
  double l2_bw = 0.0;
  double l3_bw = 0.0;           // into the shared L3
  double dram_local_bw = 0.0;   // to the thread's own memory node
  double dram_remote_bw = 0.0;  // to all other memory nodes combined

  double dram_total_bw() const { return dram_local_bw + dram_remote_bw; }
};

struct WorkloadDescription {
  std::string workload;
  std::string machine;  // the machine the description was generated on

  double t1 = 0.0;                    // Step 1: single-thread execution time
  ResourceDemandVector demands;       // Step 1: demand vector d
  double parallel_fraction = 1.0;     // Step 2: Amdahl p
  double inter_socket_overhead = 0.0; // Step 3: o_s, latency per remote peer
                                      //   relative to t1
  double load_balance = 1.0;          // Step 4: l in [0,1]
  double burstiness = 0.0;            // Step 5: b, extra slowdown fraction
                                      //   when threads share a core
  MemoryPolicy memory_policy = MemoryPolicy::kInterleaveActive;

  // Bookkeeping from profiling (not used by the predictor): the thread
  // count of run 2 and the raw relative times of the six runs.
  int profile_threads = 0;
  double r2 = 0.0, r3 = 0.0, r4 = 0.0, r5 = 0.0, r6 = 0.0;

  // Robust-profiling session report (not serialized; see ProfileQuality).
  ProfileQuality quality;

  // Plausibility check for descriptions arriving from outside the process
  // (stored files, user edits, foreign machines): t1 finite and positive,
  // demand rates finite and non-negative, derived parameters in their model
  // ranges. The message names the offending field. A description from
  // WorkloadProfiler::Profile always validates.
  Status Validate() const {
    if (!std::isfinite(t1) || t1 <= 0.0) {
      return Status::InvalidArgument(StrFormat(
          "workload description field 't1' must be finite and positive, got %g", t1));
    }
    const struct {
      const char* name;
      double value;
    } rates[] = {{"instr_rate", demands.instr_rate}, {"l1_bw", demands.l1_bw},
                 {"l2_bw", demands.l2_bw},           {"l3_bw", demands.l3_bw},
                 {"dram_local_bw", demands.dram_local_bw},
                 {"dram_remote_bw", demands.dram_remote_bw},
                 {"inter_socket_overhead", inter_socket_overhead},
                 {"burstiness", burstiness}};
    for (const auto& rate : rates) {
      if (!std::isfinite(rate.value) || rate.value < 0.0) {
        return Status::InvalidArgument(StrFormat(
            "workload description field '%s' must be finite and non-negative, got %g",
            rate.name, rate.value));
      }
    }
    if (!(parallel_fraction >= 0.0 && parallel_fraction <= 1.0)) {
      return Status::InvalidArgument(StrFormat(
          "workload description field 'parallel_fraction' must be in [0, 1], got %g",
          parallel_fraction));
    }
    if (!(load_balance >= 0.0 && load_balance <= 1.0)) {
      return Status::InvalidArgument(StrFormat(
          "workload description field 'load_balance' must be in [0, 1], got %g",
          load_balance));
    }
    if (profile_threads < 0) {
      return Status::InvalidArgument(
          StrFormat("workload description field 'profile_threads' must be "
                    "non-negative, got %d",
                    profile_threads));
    }
    return Status::Ok();
  }
};

}  // namespace pandia

#endif  // PANDIA_SRC_WORKLOAD_DESC_DESCRIPTION_H_
