// Workload description (paper §4, Figure 4).
//
// Produced from the six profiling runs; machine-specific (though §6.1 shows
// some portability across similar machines). This is the complete input
// that Pandia's predictor has about a workload — five measured properties
// plus the memory policy the workload is launched with (run configuration,
// not a measurement).
#ifndef PANDIA_SRC_WORKLOAD_DESC_DESCRIPTION_H_
#define PANDIA_SRC_WORKLOAD_DESC_DESCRIPTION_H_

#include <string>

#include "src/topology/memory_policy.h"

namespace pandia {

// Step 1: single-thread resource demand rates (measured over t1).
struct ResourceDemandVector {
  double instr_rate = 0.0;      // instructions per unit time
  double l1_bw = 0.0;           // bytes per unit time on the private L1 link
  double l2_bw = 0.0;
  double l3_bw = 0.0;           // into the shared L3
  double dram_local_bw = 0.0;   // to the thread's own memory node
  double dram_remote_bw = 0.0;  // to all other memory nodes combined

  double dram_total_bw() const { return dram_local_bw + dram_remote_bw; }
};

struct WorkloadDescription {
  std::string workload;
  std::string machine;  // the machine the description was generated on

  double t1 = 0.0;                    // Step 1: single-thread execution time
  ResourceDemandVector demands;       // Step 1: demand vector d
  double parallel_fraction = 1.0;     // Step 2: Amdahl p
  double inter_socket_overhead = 0.0; // Step 3: o_s, latency per remote peer
                                      //   relative to t1
  double load_balance = 1.0;          // Step 4: l in [0,1]
  double burstiness = 0.0;            // Step 5: b, extra slowdown fraction
                                      //   when threads share a core
  MemoryPolicy memory_policy = MemoryPolicy::kInterleaveActive;

  // Bookkeeping from profiling (not used by the predictor): the thread
  // count of run 2 and the raw relative times of the six runs.
  int profile_threads = 0;
  double r2 = 0.0, r3 = 0.0, r4 = 0.0, r5 = 0.0, r6 = 0.0;
};

}  // namespace pandia

#endif  // PANDIA_SRC_WORKLOAD_DESC_DESCRIPTION_H_
