// Workload-assumption validation.
//
// Pandia's model rests on the §2.3 assumptions: constant total work as the
// thread count varies, and plentiful fine-grained parallelism. The paper
// excludes equake for violating the first (§6, §6.3) and observes BT's
// smallest dataset violating the second (§6.4) — both found by hand. This
// module detects the violations automatically from the same counters the
// profiler already reads:
//
//   * constant work — compare retired instructions between the 1-thread
//     and n-thread profiling runs: growth beyond tolerance means per-thread
//     work is being added (equake's reduction step);
//   * fine-grained parallelism — compare per-thread busy times in the
//     n-thread run: a coarse-quantized loop (BT-small's 64 iterations)
//     leaves some threads idle at the barrier even without contention.
#ifndef PANDIA_SRC_WORKLOAD_DESC_ASSUMPTIONS_H_
#define PANDIA_SRC_WORKLOAD_DESC_ASSUMPTIONS_H_

#include <string>
#include <vector>

#include "src/machine_desc/machine_description.h"
#include "src/sim/machine.h"

namespace pandia {

struct AssumptionReport {
  // §2.3: "a fixed amount of computation". Estimated relative work growth
  // per added thread (equake's ground truth is 0.05); ok when ~0.
  bool constant_work_ok = true;
  double work_growth_per_thread = 0.0;

  // §2.3: "plentiful work to share" / §6.4 discontinuous scaling. Relative
  // spread of per-thread busy time in a contention-free run; ok when small.
  bool fine_grained_ok = true;
  double busy_time_skew = 0.0;

  // Human-readable explanations for everything that failed.
  std::vector<std::string> warnings;

  bool AllOk() const { return constant_work_ok && fine_grained_ok; }
};

// Runs the workload twice (1 thread; a handful of same-socket threads,
// background-filled like the profiling runs) and checks the assumptions.
// Thresholds: work growth beyond 2% per thread, busy-time skew beyond 8%.
AssumptionReport ValidateAssumptions(const sim::Machine& machine,
                                     const MachineDescription& description,
                                     const sim::WorkloadSpec& workload);

}  // namespace pandia

#endif  // PANDIA_SRC_WORKLOAD_DESC_ASSUMPTIONS_H_
