#include "src/workload_desc/assumptions.h"

#include <algorithm>

#include "src/counters/counters.h"
#include "src/stress/stress.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {
namespace {

constexpr double kWorkGrowthTolerance = 0.02;  // per added thread
constexpr double kBusySkewTolerance = 0.08;

// Runs the workload with idle cores filled and returns the counter view.
sim::RunResult FilledRun(const sim::Machine& machine, const sim::WorkloadSpec& workload,
                         const Placement& placement) {
  static const sim::WorkloadSpec filler = stress::BackgroundFiller();
  std::vector<sim::JobRequest> jobs{{&workload, placement, /*background=*/false}};
  const std::optional<Placement> filler_placement =
      stress::FillerPlacement(machine.topology(), std::span(&placement, 1));
  if (filler_placement.has_value()) {
    jobs.push_back(sim::JobRequest{&filler, *filler_placement, /*background=*/true});
  }
  return machine.Run(jobs);
}

}  // namespace

AssumptionReport ValidateAssumptions(const sim::Machine& machine,
                                     const MachineDescription& description,
                                     const sim::WorkloadSpec& workload) {
  const MachineTopology& topo = description.topo;
  AssumptionReport report;

  // A modest same-socket thread count, as contention-free as run 2; an odd
  // count exposes quantized loops that happen to divide evenly.
  const int n = std::max(3, std::min(topo.cores_per_socket - 1, 7));

  const sim::RunResult solo_run =
      FilledRun(machine, workload, Placement::OnePerCore(topo, 1));
  const sim::RunResult multi_run =
      FilledRun(machine, workload, Placement::OnePerCore(topo, n));
  const CounterView solo(machine, solo_run, 0);
  const CounterView multi(machine, multi_run, 0);

  // --- constant total work (§2.3; violated by equake, §6.3) ---
  PANDIA_CHECK(solo.Instructions() > 0.0);
  const double instruction_ratio = multi.Instructions() / solo.Instructions();
  report.work_growth_per_thread = (instruction_ratio - 1.0) / (n - 1);
  if (report.work_growth_per_thread > kWorkGrowthTolerance) {
    report.constant_work_ok = false;
    report.warnings.push_back(StrFormat(
        "total work grows with the thread count (%.1f%% more instructions per "
        "added thread): the constant-work assumption of the model does not hold; "
        "expect optimistic predictions at high thread counts",
        report.work_growth_per_thread * 100.0));
  }

  // --- plentiful fine-grained parallelism (§2.3; violated by BT-small, §6.4) ---
  double busy_min = multi.ThreadBusyTime(0);
  double busy_max = busy_min;
  for (int t = 1; t < multi.NumThreads(); ++t) {
    busy_min = std::min(busy_min, multi.ThreadBusyTime(t));
    busy_max = std::max(busy_max, multi.ThreadBusyTime(t));
  }
  PANDIA_CHECK(busy_max > 0.0);
  report.busy_time_skew = (busy_max - busy_min) / busy_max;
  if (report.busy_time_skew > kBusySkewTolerance) {
    report.fine_grained_ok = false;
    report.warnings.push_back(StrFormat(
        "per-thread busy times differ by %.0f%% in a contention-free run with %d "
        "threads: the parallel loop appears too coarse to divide evenly; expect "
        "scaling plateaus between divisor thread counts",
        report.busy_time_skew * 100.0, n));
  }
  return report;
}

}  // namespace pandia
