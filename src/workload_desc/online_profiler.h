// Online description refinement — the §8 runtime-integration sketch:
// "Pandia could also be integrated into runtime systems to choose the
// placement of threads in parallel loops. In this scenario the workload
// description could be generated during the execution of early iterations
// of the loop."
//
// The OnlineProfiler consumes observations (placement, relative duration,
// counter rates) as a runtime would collect them from successive loop
// epochs, and maintains a best-effort WorkloadDescription plus a statement
// of which model parameters are pinned so far. Parameters resolve in the
// §4 dependency order as informative placements arrive:
//
//   demands  — any single-thread epoch
//   p        — an additional contention-free multi-thread epoch
//   o_s      — an epoch spanning two sockets
//   b        — an epoch with threads sharing cores
//   l        — unobservable without perturbation; approximated from the
//              busy-time skew of asymmetric epochs when one occurs
//
// Epochs that would re-measure an already-pinned parameter refine it by
// averaging, so the description improves as the loop runs.
#ifndef PANDIA_SRC_WORKLOAD_DESC_ONLINE_PROFILER_H_
#define PANDIA_SRC_WORKLOAD_DESC_ONLINE_PROFILER_H_

#include <optional>
#include <string>

#include "src/counters/counters.h"
#include "src/machine_desc/machine_description.h"
#include "src/sim/machine.h"
#include "src/workload_desc/description.h"

namespace pandia {

// One observed loop epoch: the placement it ran under and the measured
// completion time of a fixed amount of loop work, plus its counter view.
struct EpochObservation {
  Placement placement;
  double time = 0.0;
  // Counter aggregates for the epoch (the runtime reads these from perf).
  double instructions = 0.0;
  double l1_bytes = 0.0;
  double l2_bytes = 0.0;
  double l3_bytes = 0.0;
  double dram_local_bytes = 0.0;
  double dram_remote_bytes = 0.0;
};

class OnlineProfiler {
 public:
  OnlineProfiler(MachineDescription machine, std::string workload_name,
                 MemoryPolicy policy);

  // Feeds one epoch. Returns true when the observation refined at least
  // one model parameter.
  bool Observe(const EpochObservation& epoch);

  // Convenience: runs one epoch of `workload` on the simulated machine
  // under `placement` and feeds the resulting observation.
  bool ObserveRun(const sim::Machine& machine, const sim::WorkloadSpec& workload,
                  const Placement& placement);

  // Current best-effort description. Unpinned parameters carry neutral
  // defaults (o_s = 0, b = 0, l = 0.5).
  const WorkloadDescription& description() const { return description_; }

  bool demands_known() const { return epochs_single_ > 0; }
  bool parallel_fraction_known() const { return epochs_parallel_ > 0; }
  bool inter_socket_overhead_known() const { return epochs_cross_socket_ > 0; }
  bool burstiness_known() const { return epochs_smt_ > 0; }

  // All parameters a runtime can observe without perturbation are pinned.
  bool Complete() const {
    return demands_known() && parallel_fraction_known() &&
           inter_socket_overhead_known() && burstiness_known();
  }

  // The placement a runtime should try next to pin the next unresolved
  // parameter, following the §4 step order and contention-free rules
  // (e.g. the parallel probe uses the largest even same-socket thread count
  // that oversubscribes no shared resource). nullopt once Complete().
  std::optional<Placement> SuggestNextProbe() const;

 private:
  // Merges a new estimate into a running average with count `n` (post-inc).
  static double Refine(double current, double sample, int n) {
    return (current * n + sample) / (n + 1);
  }

  MachineDescription machine_;
  WorkloadDescription description_;
  int epochs_single_ = 0;
  int epochs_parallel_ = 0;
  int epochs_cross_socket_ = 0;
  int epochs_smt_ = 0;
};

}  // namespace pandia

#endif  // PANDIA_SRC_WORKLOAD_DESC_ONLINE_PROFILER_H_
