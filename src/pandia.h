// Umbrella public header — the supported Pandia surface in one include.
//
// Front-ends (the tools/ binaries, embedders of the placement service)
// include only this header; everything it pulls in is public API, and each
// of the headers below is self-contained (enforced by the header_check CI
// target, which compiles every public header standalone).
//
// Layers, bottom to top:
//
//   util       Status/StatusOr error propagation, CommonOptions, strings,
//              annotated Mutex/CondVar + thread-safety annotations
//   lint       the pandia_lint repo-invariant checker's rule engine
//   obs        metrics registry, tracing, convergence introspection
//   topology   machine topologies, placements, placement parsing
//   sim        the simulated machines the evaluation harness runs on
//   desc       machine descriptions (§3) and workload descriptions (§4)
//   serialize  description files and the wire-v1 request/response schema
//   predictor  single-job and co-scheduled contention prediction (§5),
//              placement optimization, the prediction cache
//   rack       multi-machine online scheduling state (§8)
//   serve      the long-running placement service and its transports
//   eval       profiling pipeline, sweeps, and the workload suite
#ifndef PANDIA_SRC_PANDIA_H_
#define PANDIA_SRC_PANDIA_H_

#include "src/util/check.h"
#include "src/util/common_options.h"
#include "src/util/crc32c.h"
#include "src/util/mutex.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/util/thread_annotations.h"

#include "src/lint/lint.h"

#include "src/obs/flight_recorder.h"
#include "src/obs/json_lint.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

#include "src/topology/placement.h"
#include "src/topology/placement_parse.h"
#include "src/topology/resource_index.h"
#include "src/topology/topology.h"

#include "src/sim/fault_plan.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"

#include "src/machine_desc/generator.h"
#include "src/machine_desc/machine_description.h"
#include "src/workload_desc/assumptions.h"
#include "src/workload_desc/description.h"
#include "src/workload_desc/profiler.h"

#include "src/serialize/serialize.h"
#include "src/serialize/wire.h"

#include "src/predictor/co_schedule.h"
#include "src/predictor/optimizer.h"
#include "src/predictor/prediction_cache.h"
#include "src/predictor/predictor.h"
#include "src/predictor/report.h"

#include "src/rack/fleet.h"
#include "src/rack/rack.h"

#include "src/serve/client.h"
#include "src/serve/fleet_service.h"
#include "src/serve/handler.h"
#include "src/serve/journal.h"
#include "src/serve/service.h"
#include "src/serve/socket.h"

#include "src/eval/experiment.h"
#include "src/eval/pipeline.h"
#include "src/workloads/workloads.h"

#endif  // PANDIA_SRC_PANDIA_H_
