#include "src/counters/counters.h"

#include "src/util/check.h"

namespace pandia {

CounterView::CounterView(const sim::Machine& machine, const sim::RunResult& result,
                         int job_index)
    : machine_(&machine), result_(&result), job_index_(job_index) {
  PANDIA_CHECK(job_index >= 0 &&
               static_cast<size_t>(job_index) < result.jobs.size());
}

double CounterView::Instructions() const {
  return BytesOnKind(ResourceKind::kCore);
}

double CounterView::BytesOnKind(ResourceKind kind) const {
  const ResourceIndex& idx = machine_->index();
  const std::vector<double>& used = job().resource_consumption;
  double total = 0.0;
  for (int r = 0; r < idx.Count(); ++r) {
    if (idx.KindOf(r) == kind) {
      total += used[r];
    }
  }
  return total;
}

double CounterView::DramBytesOnNode(int socket) const {
  return ResourceConsumption(machine_->index().Dram(socket));
}

double CounterView::ResourceConsumption(int resource) const {
  PANDIA_CHECK(resource >= 0 && resource < machine_->index().Count());
  return job().resource_consumption[resource];
}

int CounterView::NumThreads() const {
  return static_cast<int>(job().threads.size());
}

double CounterView::ThreadBusyTime(int thread) const {
  PANDIA_CHECK(thread >= 0 && thread < NumThreads());
  return job().threads[thread].busy_time;
}

}  // namespace pandia
