// Perf-like counter facade over simulator run results.
//
// Pandia's measurement components (machine description generator, workload
// profiler) observe runs exclusively through this view — wall time plus
// hardware-counter-style aggregates — never through the hidden WorkloadSpec
// or MachineSpec. This mirrors the information boundary of the paper, which
// measures real binaries with CPU performance counters (§3, §4).
//
// Semantics notes:
//   * Instructions() counts issue slots consumed on the cores. For runs
//     without SMT burst collisions this equals retired instructions; under
//     collisions it includes replay slots, as issue-slot counters do.
//   * Bandwidth counters report bytes moved on each class of link; DRAM
//     traffic is additionally available per memory node (uncore-IMC style).
#ifndef PANDIA_SRC_COUNTERS_COUNTERS_H_
#define PANDIA_SRC_COUNTERS_COUNTERS_H_

#include "src/sim/machine.h"
#include "src/topology/resource_index.h"

namespace pandia {

class CounterView {
 public:
  // The view keeps references; machine and result must outlive it.
  CounterView(const sim::Machine& machine, const sim::RunResult& result, int job_index);

  double WallTime() const { return result_->wall_time; }
  double CompletionTime() const { return job().completion_time; }

  // Total issue slots consumed on all cores by this job.
  double Instructions() const;

  // Bytes moved by this job on all resources of the given kind.
  double BytesOnKind(ResourceKind kind) const;

  double L1Bytes() const { return BytesOnKind(ResourceKind::kL1); }
  double L2Bytes() const { return BytesOnKind(ResourceKind::kL2); }
  double L3Bytes() const { return BytesOnKind(ResourceKind::kL3Port); }
  double DramBytes() const { return BytesOnKind(ResourceKind::kDram); }
  double InterconnectBytes() const { return BytesOnKind(ResourceKind::kLink); }

  // Bytes this job moved to the DRAM channel of one memory node.
  double DramBytesOnNode(int socket) const;

  // Raw consumption on one resource (ResourceIndex order). Used by the
  // machine description generator to read individual link bandwidths.
  double ResourceConsumption(int resource) const;

  // Per-thread scheduling view (perf's per-thread task clock): how long
  // each of the job's threads was busy rather than waiting at barriers.
  int NumThreads() const;
  double ThreadBusyTime(int thread) const;

  const ResourceIndex& index() const { return machine_->index(); }

 private:
  const sim::JobResult& job() const { return result_->jobs[job_index_]; }

  const sim::Machine* machine_;
  const sim::RunResult* result_;
  int job_index_;
};

}  // namespace pandia

#endif  // PANDIA_SRC_COUNTERS_COUNTERS_H_
