#include "src/topology/memory_policy.h"

#include <algorithm>

#include "src/util/check.h"

namespace pandia {

std::string MemoryPolicyName(MemoryPolicy policy) {
  switch (policy) {
    case MemoryPolicy::kLocal:
      return "local";
    case MemoryPolicy::kInterleaveAll:
      return "interleave-all";
    case MemoryPolicy::kInterleaveActive:
      return "interleave-active";
    case MemoryPolicy::kHomeSocket:
      return "home-socket";
  }
  return "unknown";
}

std::vector<double> MemoryNodeWeights(MemoryPolicy policy, int num_sockets,
                                      const std::vector<bool>& active_sockets,
                                      int thread_socket, int home_socket) {
  PANDIA_CHECK(static_cast<int>(active_sockets.size()) == num_sockets);
  std::vector<uint8_t> active(active_sockets.size(), 0);
  for (size_t s = 0; s < active_sockets.size(); ++s) {
    active[s] = active_sockets[s] ? 1 : 0;
  }
  std::vector<double> weights(static_cast<size_t>(num_sockets), 0.0);
  MemoryNodeWeightsInto(policy, num_sockets, active, thread_socket, home_socket,
                        weights);
  return weights;
}

void MemoryNodeWeightsInto(MemoryPolicy policy, int num_sockets,
                           std::span<const uint8_t> active_sockets,
                           int thread_socket, int home_socket,
                           std::span<double> weights) {
  PANDIA_CHECK(num_sockets > 0);
  PANDIA_CHECK(static_cast<int>(active_sockets.size()) == num_sockets);
  PANDIA_CHECK(static_cast<int>(weights.size()) == num_sockets);
  PANDIA_CHECK(thread_socket >= 0 && thread_socket < num_sockets);
  PANDIA_CHECK(home_socket >= 0 && home_socket < num_sockets);
  std::fill(weights.begin(), weights.end(), 0.0);
  switch (policy) {
    case MemoryPolicy::kLocal:
      weights[thread_socket] = 1.0;
      break;
    case MemoryPolicy::kInterleaveAll:
      std::fill(weights.begin(), weights.end(), 1.0 / num_sockets);
      break;
    case MemoryPolicy::kInterleaveActive: {
      int active = 0;
      for (int s = 0; s < num_sockets; ++s) {
        active += active_sockets[s] != 0 ? 1 : 0;
      }
      PANDIA_CHECK_MSG(active > 0, "job has no active sockets");
      for (int s = 0; s < num_sockets; ++s) {
        if (active_sockets[s] != 0) {
          weights[s] = 1.0 / active;
        }
      }
      break;
    }
    case MemoryPolicy::kHomeSocket:
      weights[home_socket] = 1.0;
      break;
  }
}

}  // namespace pandia
