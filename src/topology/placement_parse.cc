#include "src/topology/placement_parse.h"

#include <cctype>
#include <cstdlib>

#include "src/util/strings.h"

namespace pandia {
namespace {

void SetError(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
}

// Parses a non-negative integer at text[pos...], advancing pos. Returns -1
// if no digits are present.
int ParseInt(const std::string& text, size_t& pos) {
  if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
    return -1;
  }
  int value = 0;
  while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
    value = value * 10 + (text[pos] - '0');
    ++pos;
    if (value > 1 << 20) {
      return -1;  // absurd thread counts are malformed input, not overflow
    }
  }
  return value;
}

// "Nx1", "Nx2", "Nx1+Mx2", or "0".
std::optional<SocketLoad> ParseLoad(const std::string& field, std::string* error) {
  SocketLoad load{};
  size_t pos = 0;
  while (pos < field.size()) {
    const int count = ParseInt(field, pos);
    if (count < 0) {
      SetError(error, StrFormat("expected a count in '%s'", field.c_str()));
      return std::nullopt;
    }
    if (pos == field.size() && count == 0) {
      break;  // "0": empty socket
    }
    if (pos >= field.size() || field[pos] != 'x') {
      SetError(error, StrFormat("expected 'x1' or 'x2' in '%s'", field.c_str()));
      return std::nullopt;
    }
    ++pos;
    const int width = ParseInt(field, pos);
    if (width == 1) {
      load.singles += count;
    } else if (width == 2) {
      load.doubles += count;
    } else {
      SetError(error, StrFormat("unsupported occupancy 'x%d' in '%s'", width,
                                field.c_str()));
      return std::nullopt;
    }
    if (pos < field.size()) {
      if (field[pos] != '+') {
        SetError(error, StrFormat("expected '+' in '%s'", field.c_str()));
        return std::nullopt;
      }
      ++pos;
    }
  }
  return load;
}

}  // namespace

std::optional<Placement> ParsePlacement(const MachineTopology& topo,
                                        const std::string& text,
                                        std::string* error) {
  if (text.empty()) {
    SetError(error, "empty placement");
    return std::nullopt;
  }

  // Shorthands: "N" (one per core) and "Nx2" (two per core).
  if (text.find(':') == std::string::npos) {
    size_t pos = 0;
    const int n = ParseInt(text, pos);
    if (n <= 0) {
      SetError(error, StrFormat("malformed placement '%s'", text.c_str()));
      return std::nullopt;
    }
    if (pos == text.size()) {
      if (n > topo.NumCores()) {
        SetError(error, StrFormat("%d threads exceed the %d cores", n, topo.NumCores()));
        return std::nullopt;
      }
      return Placement::OnePerCore(topo, n);
    }
    if (text.substr(pos) == "x2") {
      if (topo.threads_per_core < 2 || n > topo.NumHwThreads()) {
        SetError(error, StrFormat("%d packed threads do not fit", n));
        return std::nullopt;
      }
      return Placement::TwoPerCore(topo, n);
    }
    SetError(error, StrFormat("malformed placement '%s'", text.c_str()));
    return std::nullopt;
  }

  std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
  for (const std::string& raw : StrSplit(text, ',')) {
    std::string field = raw;
    // Tolerate the spaces Placement::ToString emits.
    std::erase(field, ' ');
    if (field.size() < 3 || field[0] != 's') {
      SetError(error, StrFormat("expected 'sN:...' in '%s'", raw.c_str()));
      return std::nullopt;
    }
    size_t pos = 1;
    const int socket = ParseInt(field, pos);
    if (socket < 0 || socket >= topo.num_sockets) {
      SetError(error, StrFormat("bad socket index in '%s'", raw.c_str()));
      return std::nullopt;
    }
    if (pos >= field.size() || field[pos] != ':') {
      SetError(error, StrFormat("expected ':' in '%s'", raw.c_str()));
      return std::nullopt;
    }
    const std::optional<SocketLoad> load = ParseLoad(field.substr(pos + 1), error);
    if (!load.has_value()) {
      return std::nullopt;
    }
    if (load->CoresUsed() > topo.cores_per_socket) {
      SetError(error, StrFormat("socket %d over-subscribed: %d cores needed, %d present",
                                socket, load->CoresUsed(), topo.cores_per_socket));
      return std::nullopt;
    }
    if (load->doubles > 0 && topo.threads_per_core < 2) {
      SetError(error, "machine has no SMT");
      return std::nullopt;
    }
    loads[socket] = *load;
  }
  int total = 0;
  for (const SocketLoad& load : loads) {
    total += load.Threads();
  }
  if (total == 0) {
    SetError(error, "placement has no threads");
    return std::nullopt;
  }
  return Placement::FromSocketLoads(topo, loads);
}

}  // namespace pandia
