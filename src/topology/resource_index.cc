#include "src/topology/resource_index.h"

#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {


ResourceIndex::ResourceIndex(const MachineTopology& topo)
    : topo_(topo),
      num_cores_(topo.NumCores()),
      num_sockets_(topo.num_sockets),
      count_(4 * topo.NumCores() + 2 * topo.num_sockets + topo.NumInterconnectLinks()) {
  PANDIA_CHECK(num_cores_ > 0);
}

ResourceKind ResourceIndex::KindOf(int index) const {
  PANDIA_CHECK(index >= 0 && index < count_);
  if (index < num_cores_) {
    return ResourceKind::kCore;
  }
  if (index < 2 * num_cores_) {
    return ResourceKind::kL1;
  }
  if (index < 3 * num_cores_) {
    return ResourceKind::kL2;
  }
  if (index < 4 * num_cores_) {
    return ResourceKind::kL3Port;
  }
  if (index < 4 * num_cores_ + num_sockets_) {
    return ResourceKind::kL3Agg;
  }
  if (index < 4 * num_cores_ + 2 * num_sockets_) {
    return ResourceKind::kDram;
  }
  return ResourceKind::kLink;
}

std::string ResourceIndex::Name(int index) const {
  switch (KindOf(index)) {
    case ResourceKind::kCore:
      return StrFormat("core%d", index);
    case ResourceKind::kL1:
      return StrFormat("l1.%d", index - num_cores_);
    case ResourceKind::kL2:
      return StrFormat("l2.%d", index - 2 * num_cores_);
    case ResourceKind::kL3Port:
      return StrFormat("l3port%d", index - 3 * num_cores_);
    case ResourceKind::kL3Agg:
      return StrFormat("l3agg%d", index - 4 * num_cores_);
    case ResourceKind::kDram:
      return StrFormat("dram%d", index - 4 * num_cores_ - num_sockets_);
    case ResourceKind::kLink: {
      const int link = index - 4 * num_cores_ - 2 * num_sockets_;
      // Invert LinkIndex for naming.
      for (int a = 0; a < num_sockets_; ++a) {
        for (int b = a + 1; b < num_sockets_; ++b) {
          if (topo_.LinkIndex(a, b) == link) {
            return StrFormat("link%d-%d", a, b);
          }
        }
      }
      return StrFormat("link?%d", link);
    }
  }
  return "unknown";
}

}  // namespace pandia
