// Flat indexing of the machine's contended resources.
//
// Both the simulator and the predictor view the machine as a vector of
// capacity-limited resources: per-core issue slots and private-cache links,
// per-core L3 ports, per-socket L3 aggregate bandwidth and DRAM channels,
// and per-socket-pair interconnect links (paper §3, Figure 3).
#ifndef PANDIA_SRC_TOPOLOGY_RESOURCE_INDEX_H_
#define PANDIA_SRC_TOPOLOGY_RESOURCE_INDEX_H_

#include <string>

#include "src/topology/topology.h"

namespace pandia {


enum class ResourceKind {
  kCore,     // instruction issue capacity of one core
  kL1,       // per-core L1 link
  kL2,       // per-core L2 link
  kL3Port,   // per-core port into the socket's shared L3
  kL3Agg,    // per-socket aggregate L3 bandwidth
  kDram,     // per-socket memory channel
  kLink,     // per-socket-pair interconnect link
};

class ResourceIndex {
 public:
  // The topology is stored by value so objects embedding a ResourceIndex
  // (Machine, Predictor) stay self-contained under copy and move.
  explicit ResourceIndex(const MachineTopology& topo);

  int Core(int core) const { return core; }
  int L1(int core) const { return num_cores_ + core; }
  int L2(int core) const { return 2 * num_cores_ + core; }
  int L3Port(int core) const { return 3 * num_cores_ + core; }
  int L3Agg(int socket) const { return 4 * num_cores_ + socket; }
  int Dram(int socket) const { return 4 * num_cores_ + num_sockets_ + socket; }
  int Link(int socket_a, int socket_b) const {
    return 4 * num_cores_ + 2 * num_sockets_ + topo_.LinkIndex(socket_a, socket_b);
  }

  int Count() const { return count_; }

  ResourceKind KindOf(int index) const;
  // Human-readable name, e.g. "core17", "dram0", "link0-1".
  std::string Name(int index) const;

  const MachineTopology& topology() const { return topo_; }

 private:
  MachineTopology topo_;
  int num_cores_;
  int num_sockets_;
  int count_;
};

}  // namespace pandia

#endif  // PANDIA_SRC_TOPOLOGY_RESOURCE_INDEX_H_
