#include "src/topology/topology.h"

#include <algorithm>

#include "src/util/check.h"

namespace pandia {

int MachineTopology::LinkIndex(int socket_a, int socket_b) const {
  PANDIA_CHECK(socket_a != socket_b);
  PANDIA_CHECK(socket_a >= 0 && socket_a < num_sockets);
  PANDIA_CHECK(socket_b >= 0 && socket_b < num_sockets);
  const int lo = std::min(socket_a, socket_b);
  const int hi = std::max(socket_a, socket_b);
  // Row-major index into the strict upper triangle of the socket matrix.
  return lo * num_sockets - lo * (lo + 1) / 2 + (hi - lo - 1);
}

}  // namespace pandia
