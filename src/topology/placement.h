// Thread placements.
//
// A placement assigns a number of workload threads (0..threads_per_core) to
// each core of a machine. Cores within a socket are interchangeable, as are
// sockets within the machine, so placements are kept in a canonical form:
// within each socket the fully-occupied cores come first, then the singly
// occupied cores; sockets are sorted by (threads desc, doubles desc).
#ifndef PANDIA_SRC_TOPOLOGY_PLACEMENT_H_
#define PANDIA_SRC_TOPOLOGY_PLACEMENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/topology/topology.h"

namespace pandia {

// Location of a single workload thread on the machine.
struct ThreadLocation {
  int socket = 0;
  int core = 0;  // global core id
  int slot = 0;  // SMT slot within the core

  friend bool operator==(const ThreadLocation&, const ThreadLocation&) = default;
};

// Per-socket load in canonical form: `doubles` cores run 2 threads and
// `singles` cores run 1 thread (SMT width 2 machines; wider SMT is expressed
// via the raw per-core constructor).
struct SocketLoad {
  int singles = 0;
  int doubles = 0;

  int Threads() const { return singles + 2 * doubles; }
  int CoresUsed() const { return singles + doubles; }
  friend bool operator==(const SocketLoad&, const SocketLoad&) = default;
};

class Placement {
 public:
  // Builds a placement from an explicit per-core thread count vector
  // (size topo.NumCores(), each entry in [0, threads_per_core]).
  Placement(const MachineTopology& topo, std::vector<uint8_t> threads_per_core);

  // Builds a canonical placement from per-socket loads (loads.size() must
  // equal topo.num_sockets; each socket's CoresUsed() must fit).
  static Placement FromSocketLoads(const MachineTopology& topo,
                                   std::span<const SocketLoad> loads);

  // Convenience: n threads, one per core, packed onto the lowest sockets.
  static Placement OnePerCore(const MachineTopology& topo, int n_threads);

  // Convenience: n threads packed two per core onto the lowest sockets.
  static Placement TwoPerCore(const MachineTopology& topo, int n_threads);

  int TotalThreads() const { return total_threads_; }
  int ThreadsOnSocket(int socket) const;
  int CoresUsedOnSocket(int socket) const;
  int ActiveCoresOnSocket(int socket) const { return CoresUsedOnSocket(socket); }
  int NumActiveSockets() const;
  uint8_t ThreadsOnCore(int core) const { return per_core_[core]; }
  const std::vector<uint8_t>& PerCore() const { return per_core_; }

  // Deterministic expansion to individual thread locations: cores in index
  // order, SMT slots in order within each core.
  std::vector<ThreadLocation> ThreadLocations() const;

  // Canonical per-socket loads (valid for SMT-2 machines).
  std::vector<SocketLoad> SocketLoads() const;

  // Paper ordering (§6.1): placements are sorted first by total thread
  // count, then lexicographically by the per-core counts.
  static bool PaperOrderLess(const Placement& a, const Placement& b);

  // Human-readable form, e.g. "12 threads [s0: 8x1+2x2, s1: 0]".
  std::string ToString() const;

  // Stored by value: placements routinely outlive the scope that built
  // them (sweep results, rack assignments), so they must not dangle.
  const MachineTopology& topology() const { return topo_; }

  friend bool operator==(const Placement& a, const Placement& b) {
    return a.per_core_ == b.per_core_;
  }

 private:
  MachineTopology topo_;
  std::vector<uint8_t> per_core_;
  int total_threads_ = 0;
};

}  // namespace pandia

#endif  // PANDIA_SRC_TOPOLOGY_PLACEMENT_H_
