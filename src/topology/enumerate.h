// Enumeration and sampling of canonical thread placements.
//
// Cores within a socket and sockets within the machine are interchangeable
// (the paper's machines are homogeneous and fully connected, §2.2), so the
// placement space is the set of multisets of per-socket loads. For 2-socket
// machines this is small enough to enumerate exhaustively (1034 placements
// at 8 cores/socket, 18144 at 18); the 4-socket machine is sampled, as the
// paper samples ~20% of the X5-2's space.
#ifndef PANDIA_SRC_TOPOLOGY_ENUMERATE_H_
#define PANDIA_SRC_TOPOLOGY_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/topology/placement.h"
#include "src/topology/topology.h"

namespace pandia {

// All per-socket loads (singles, doubles) with CoresUsed() <= cores_per_socket,
// including the empty load. For SMT-1 machines, doubles is always 0.
std::vector<SocketLoad> EnumerateSocketLoads(const MachineTopology& topo);

// Number of canonical placements (multisets of socket loads, excluding the
// all-empty placement) without materializing them.
uint64_t CountCanonicalPlacements(const MachineTopology& topo);

// All canonical placements, excluding the all-empty placement, in paper order
// (total threads, then per-core counts). Intended for machines where
// CountCanonicalPlacements() is small (call sites should check).
std::vector<Placement> EnumerateCanonicalPlacements(const MachineTopology& topo);

// Deterministic sample of at most `count` distinct canonical placements that
// satisfy `filter` (nullptr = accept all), in paper order. Sampling is
// uniform over random per-socket loads, deduplicated after canonicalization.
std::vector<Placement> SampleCanonicalPlacements(
    const MachineTopology& topo, size_t count, uint64_t seed,
    const std::function<bool(const Placement&)>& filter = nullptr);

// §6.3 "simple pattern exploration" baselines: 1..N threads placed as close
// together as possible (two per core, sockets filled in order) ...
std::vector<Placement> CompactSweep(const MachineTopology& topo);

// ... or spread as far apart as possible (threads balanced across sockets,
// one per core before SMT slots are used).
std::vector<Placement> SpreadSweep(const MachineTopology& topo);

}  // namespace pandia

#endif  // PANDIA_SRC_TOPOLOGY_ENUMERATE_H_
