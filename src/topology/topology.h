// Machine topology: the structural information the operating system exposes
// (paper §3): sockets, cores per socket, hardware threads per core, and the
// cache hierarchy. Capacities (bandwidths, instruction rates) are *not* part
// of the topology — Pandia measures those empirically (machine_desc), and the
// simulator holds its own hidden ground-truth capacities (sim::MachineSpec).
#ifndef PANDIA_SRC_TOPOLOGY_TOPOLOGY_H_
#define PANDIA_SRC_TOPOLOGY_TOPOLOGY_H_

#include <string>

namespace pandia {

// Sizes are in abstract capacity units; the paper (§3, Figure 3) observes
// that only consistent units matter, not the absolute scale. We use MiB-like
// units for cache sizes throughout.
struct MachineTopology {
  std::string name;
  int num_sockets = 0;
  int cores_per_socket = 0;
  int threads_per_core = 0;  // SMT width
  double l1_size = 0.0;      // per core
  double l2_size = 0.0;      // per core
  double l3_size = 0.0;      // per socket (shared)

  int NumCores() const { return num_sockets * cores_per_socket; }
  int NumHwThreads() const { return NumCores() * threads_per_core; }
  int SocketOfCore(int core) const { return core / cores_per_socket; }
  int FirstCoreOfSocket(int socket) const { return socket * cores_per_socket; }

  // Number of distinct interconnect links in a fully-connected topology.
  int NumInterconnectLinks() const {
    return num_sockets * (num_sockets - 1) / 2;
  }

  // Index of the (unordered) link between two distinct sockets, in
  // [0, NumInterconnectLinks()).
  int LinkIndex(int socket_a, int socket_b) const;
};

}  // namespace pandia

#endif  // PANDIA_SRC_TOPOLOGY_TOPOLOGY_H_
