// Parsing placements from their textual form.
//
// Grammar (matching Placement::ToString and the CLI tools):
//   placement   := socket-load (',' socket-load)*     one entry per socket
//   socket-load := 's' INDEX ':' SINGLES 'x1' '+' DOUBLES 'x2'
//                | 's' INDEX ':' SINGLES 'x1'
//                | 's' INDEX ':' '0'
// Examples: "s0:8x1+2x2,s1:4x1", "s0:0,s1:0x1+8x2".
// Shorthands (no 's' prefixes) are also accepted:
//   "12"        -> 12 threads, one per core, packed onto the lowest sockets
//   "12x2"      -> 12 threads packed two per core
#ifndef PANDIA_SRC_TOPOLOGY_PLACEMENT_PARSE_H_
#define PANDIA_SRC_TOPOLOGY_PLACEMENT_PARSE_H_

#include <optional>
#include <string>

#include "src/topology/placement.h"
#include "src/topology/topology.h"

namespace pandia {

// Parses `text` into a placement on `topo`. Returns nullopt (with a message
// in *error if non-null) on malformed input or loads that do not fit.
std::optional<Placement> ParsePlacement(const MachineTopology& topo,
                                        const std::string& text,
                                        std::string* error = nullptr);

}  // namespace pandia

#endif  // PANDIA_SRC_TOPOLOGY_PLACEMENT_PARSE_H_
