#include "src/topology/enumerate.h"

#include <algorithm>
#include <set>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace pandia {
namespace {

// Canonical socket order: busiest socket first, ties broken by more doubles.
bool SocketLoadGreater(const SocketLoad& a, const SocketLoad& b) {
  if (a.Threads() != b.Threads()) {
    return a.Threads() > b.Threads();
  }
  return a.doubles > b.doubles;
}

Placement MakeCanonical(const MachineTopology& topo, std::vector<SocketLoad> loads) {
  std::sort(loads.begin(), loads.end(), SocketLoadGreater);
  return Placement::FromSocketLoads(topo, loads);
}

// Recursively emits multisets of socket loads as non-increasing sequences of
// indices into `loads`.
void EmitMultisets(const MachineTopology& topo, const std::vector<SocketLoad>& loads,
                   std::vector<SocketLoad>& current, size_t max_index, int socket,
                   std::vector<Placement>& out) {
  if (socket == topo.num_sockets) {
    Placement placement = MakeCanonical(topo, current);
    if (placement.TotalThreads() > 0) {
      out.push_back(std::move(placement));
    }
    return;
  }
  for (size_t i = 0; i <= max_index; ++i) {
    current[socket] = loads[i];
    EmitMultisets(topo, loads, current, i, socket + 1, out);
  }
}

uint64_t MultisetCount(uint64_t options, int slots) {
  // C(options + slots - 1, slots)
  uint64_t result = 1;
  for (int i = 1; i <= slots; ++i) {
    result = result * (options + static_cast<uint64_t>(slots - i)) /
             static_cast<uint64_t>(i);
  }
  return result;
}

}  // namespace

std::vector<SocketLoad> EnumerateSocketLoads(const MachineTopology& topo) {
  std::vector<SocketLoad> loads;
  const int max_doubles = topo.threads_per_core >= 2 ? topo.cores_per_socket : 0;
  for (int doubles = 0; doubles <= max_doubles; ++doubles) {
    for (int singles = 0; singles + doubles <= topo.cores_per_socket; ++singles) {
      loads.push_back(SocketLoad{singles, doubles});
    }
  }
  return loads;
}

uint64_t CountCanonicalPlacements(const MachineTopology& topo) {
  const uint64_t options = EnumerateSocketLoads(topo).size();
  return MultisetCount(options, topo.num_sockets) - 1;  // minus the empty placement
}

std::vector<Placement> EnumerateCanonicalPlacements(const MachineTopology& topo) {
  const std::vector<SocketLoad> loads = EnumerateSocketLoads(topo);
  std::vector<Placement> out;
  out.reserve(CountCanonicalPlacements(topo));
  std::vector<SocketLoad> current(static_cast<size_t>(topo.num_sockets));
  EmitMultisets(topo, loads, current, loads.size() - 1, 0, out);
  std::sort(out.begin(), out.end(), Placement::PaperOrderLess);
  return out;
}

std::vector<Placement> SampleCanonicalPlacements(
    const MachineTopology& topo, size_t count, uint64_t seed,
    const std::function<bool(const Placement&)>& filter) {
  const std::vector<SocketLoad> loads = EnumerateSocketLoads(topo);
  Rng rng(HashCombine(seed, 0x706c6163656d656eULL));
  std::set<std::vector<uint8_t>> seen;
  std::vector<Placement> out;
  // Bounded attempts: the filter may admit fewer than `count` placements.
  const size_t max_attempts = count * 400 + 10000;
  for (size_t attempt = 0; attempt < max_attempts && out.size() < count; ++attempt) {
    std::vector<SocketLoad> chosen(static_cast<size_t>(topo.num_sockets));
    for (auto& load : chosen) {
      load = loads[rng.NextBounded(loads.size())];
    }
    Placement placement = MakeCanonical(topo, std::move(chosen));
    if (placement.TotalThreads() == 0) {
      continue;
    }
    if (filter && !filter(placement)) {
      continue;
    }
    if (seen.insert(placement.PerCore()).second) {
      out.push_back(std::move(placement));
    }
  }
  std::sort(out.begin(), out.end(), Placement::PaperOrderLess);
  return out;
}

std::vector<Placement> CompactSweep(const MachineTopology& topo) {
  std::vector<Placement> out;
  out.reserve(static_cast<size_t>(topo.NumHwThreads()));
  for (int n = 1; n <= topo.NumHwThreads(); ++n) {
    out.push_back(Placement::TwoPerCore(topo, n));
  }
  return out;
}

std::vector<Placement> SpreadSweep(const MachineTopology& topo) {
  std::vector<Placement> out;
  out.reserve(static_cast<size_t>(topo.NumHwThreads()));
  for (int n = 1; n <= topo.NumHwThreads(); ++n) {
    std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
    for (int s = 0; s < topo.num_sockets; ++s) {
      // Balanced split: the first (n % sockets) sockets carry one extra.
      int threads = n / topo.num_sockets + (s < n % topo.num_sockets ? 1 : 0);
      if (threads <= topo.cores_per_socket) {
        loads[s] = SocketLoad{threads, 0};
      } else {
        const int doubles = threads - topo.cores_per_socket;
        loads[s] = SocketLoad{topo.cores_per_socket - doubles, doubles};
      }
    }
    out.push_back(Placement::FromSocketLoads(topo, loads));
  }
  return out;
}

}  // namespace pandia
