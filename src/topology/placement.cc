#include "src/topology/placement.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {

Placement::Placement(const MachineTopology& topo, std::vector<uint8_t> threads_per_core)
    : topo_(topo), per_core_(std::move(threads_per_core)) {
  PANDIA_CHECK_MSG(static_cast<int>(per_core_.size()) == topo.NumCores(),
                   "per-core vector size != core count");
  for (uint8_t count : per_core_) {
    PANDIA_CHECK_MSG(count <= topo.threads_per_core, "core over-subscribed");
    total_threads_ += count;
  }
}

Placement Placement::FromSocketLoads(const MachineTopology& topo,
                                     std::span<const SocketLoad> loads) {
  PANDIA_CHECK(static_cast<int>(loads.size()) == topo.num_sockets);
  PANDIA_CHECK_MSG(topo.threads_per_core >= 2 || std::all_of(loads.begin(), loads.end(),
                                                             [](const SocketLoad& l) {
                                                               return l.doubles == 0;
                                                             }),
                   "doubles require SMT");
  std::vector<uint8_t> per_core(static_cast<size_t>(topo.NumCores()), 0);
  for (int s = 0; s < topo.num_sockets; ++s) {
    const SocketLoad& load = loads[s];
    PANDIA_CHECK(load.singles >= 0 && load.doubles >= 0);
    PANDIA_CHECK_MSG(load.CoresUsed() <= topo.cores_per_socket, "socket over-subscribed");
    int core = topo.FirstCoreOfSocket(s);
    for (int i = 0; i < load.doubles; ++i) {
      per_core[core++] = 2;
    }
    for (int i = 0; i < load.singles; ++i) {
      per_core[core++] = 1;
    }
  }
  return Placement(topo, std::move(per_core));
}

Placement Placement::OnePerCore(const MachineTopology& topo, int n_threads) {
  PANDIA_CHECK(n_threads >= 0 && n_threads <= topo.NumCores());
  std::vector<uint8_t> per_core(static_cast<size_t>(topo.NumCores()), 0);
  for (int i = 0; i < n_threads; ++i) {
    per_core[i] = 1;
  }
  return Placement(topo, std::move(per_core));
}

Placement Placement::TwoPerCore(const MachineTopology& topo, int n_threads) {
  PANDIA_CHECK(topo.threads_per_core >= 2);
  PANDIA_CHECK(n_threads >= 0 && n_threads <= 2 * topo.NumCores());
  std::vector<uint8_t> per_core(static_cast<size_t>(topo.NumCores()), 0);
  int remaining = n_threads;
  for (int core = 0; remaining > 0; ++core) {
    const int here = std::min(remaining, 2);
    per_core[core] = static_cast<uint8_t>(here);
    remaining -= here;
  }
  return Placement(topo, std::move(per_core));
}

int Placement::ThreadsOnSocket(int socket) const {
  int total = 0;
  for (int c = topo_.FirstCoreOfSocket(socket), i = 0; i < topo_.cores_per_socket;
       ++i, ++c) {
    total += per_core_[c];
  }
  return total;
}

int Placement::CoresUsedOnSocket(int socket) const {
  int used = 0;
  for (int c = topo_.FirstCoreOfSocket(socket), i = 0; i < topo_.cores_per_socket;
       ++i, ++c) {
    used += per_core_[c] > 0 ? 1 : 0;
  }
  return used;
}

int Placement::NumActiveSockets() const {
  int active = 0;
  for (int s = 0; s < topo_.num_sockets; ++s) {
    active += ThreadsOnSocket(s) > 0 ? 1 : 0;
  }
  return active;
}

std::vector<ThreadLocation> Placement::ThreadLocations() const {
  std::vector<ThreadLocation> locations;
  locations.reserve(static_cast<size_t>(total_threads_));
  for (int core = 0; core < topo_.NumCores(); ++core) {
    for (int slot = 0; slot < per_core_[core]; ++slot) {
      locations.push_back(ThreadLocation{topo_.SocketOfCore(core), core, slot});
    }
  }
  return locations;
}

std::vector<SocketLoad> Placement::SocketLoads() const {
  std::vector<SocketLoad> loads(static_cast<size_t>(topo_.num_sockets));
  for (int core = 0; core < topo_.NumCores(); ++core) {
    SocketLoad& load = loads[topo_.SocketOfCore(core)];
    if (per_core_[core] == 1) {
      ++load.singles;
    } else if (per_core_[core] >= 2) {
      ++load.doubles;
    }
  }
  return loads;
}

bool Placement::PaperOrderLess(const Placement& a, const Placement& b) {
  if (a.total_threads_ != b.total_threads_) {
    return a.total_threads_ < b.total_threads_;
  }
  return a.per_core_ < b.per_core_;
}

std::string Placement::ToString() const {
  std::string out = StrFormat("%d threads [", total_threads_);
  for (int s = 0; s < topo_.num_sockets; ++s) {
    SocketLoad load{};
    for (int c = topo_.FirstCoreOfSocket(s), i = 0; i < topo_.cores_per_socket;
         ++i, ++c) {
      if (per_core_[c] == 1) {
        ++load.singles;
      } else if (per_core_[c] >= 2) {
        ++load.doubles;
      }
    }
    out += StrFormat("%ss%d: %dx1+%dx2", s == 0 ? "" : ", ", s, load.singles,
                     load.doubles);
  }
  out += "]";
  return out;
}

}  // namespace pandia
