// NUMA memory-placement policy.
//
// Where a workload's pages live is run configuration (numactl in the paper,
// §3.1), visible both to the machine that executes the run and to Pandia's
// model — it is not a hidden workload property. The weight helper is shared
// by the simulator's traffic routing and the predictor's demand routing.
#ifndef PANDIA_SRC_TOPOLOGY_MEMORY_POLICY_H_
#define PANDIA_SRC_TOPOLOGY_MEMORY_POLICY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pandia {

enum class MemoryPolicy {
  kLocal,             // each thread's data is on its own socket
  kInterleaveAll,     // pages interleaved across every socket (numactl -i all)
  kInterleaveActive,  // pages interleaved across sockets that run threads
                      // (parallel first-touch initialization)
  kHomeSocket,        // all pages on the job's first socket (serial init)
};

std::string MemoryPolicyName(MemoryPolicy policy);

// Fraction of a thread's DRAM traffic that goes to each memory node.
// `active_sockets[s]` is true when the job has at least one thread placed on
// socket s; `thread_socket` is where the accessing thread runs; `home_socket`
// is the job's first socket. The weights sum to 1.
std::vector<double> MemoryNodeWeights(MemoryPolicy policy, int num_sockets,
                                      const std::vector<bool>& active_sockets,
                                      int thread_socket, int home_socket);

// Allocation-free variant for the predictor's solver hot path: writes the
// weights into `weights` (size num_sockets, zero-filled by the callee).
// `active_sockets` entries are 0/1 flags. Produces bit-identical values to
// MemoryNodeWeights for the same inputs.
void MemoryNodeWeightsInto(MemoryPolicy policy, int num_sockets,
                           std::span<const uint8_t> active_sockets,
                           int thread_socket, int home_socket,
                           std::span<double> weights);

}  // namespace pandia

#endif  // PANDIA_SRC_TOPOLOGY_MEMORY_POLICY_H_
