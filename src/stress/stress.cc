#include "src/stress/stress.h"

namespace pandia {
namespace stress {
namespace {

// Stressors are embarrassingly parallel streaming loops: fully parallel, no
// barriers, no cross-thread communication, smooth demand.
sim::WorkloadSpec BaseStressor(const char* name) {
  sim::WorkloadSpec spec;
  spec.name = name;
  spec.total_work = 100.0;
  spec.parallel_fraction = 1.0;
  spec.balance = sim::BalanceMode::kDynamic;
  spec.chunk_fraction = 0.0;
  spec.ops_per_work = 1.0;
  spec.l1_bpw = 0.0;
  spec.l2_bpw = 0.0;
  spec.l3_bpw = 0.0;
  spec.dram_bpw = 0.0;
  spec.duty_cycle = 1.0;
  spec.memory_policy = MemoryPolicy::kLocal;
  return spec;
}

}  // namespace

sim::WorkloadSpec CpuStressor() {
  sim::WorkloadSpec spec = BaseStressor("stress.cpu");
  // Unrolled independent integer ops; the dataset sits in L1. Even a tuned
  // loop leaves some issue width unused, so an SMT sibling gains throughput.
  spec.ops_per_work = 1.0;
  spec.l1_bpw = 2.0;
  spec.single_thread_ipc = 0.75;
  return spec;
}

sim::WorkloadSpec L1Stressor() {
  sim::WorkloadSpec spec = BaseStressor("stress.l1");
  // One 64-byte line per couple of instructions.
  spec.ops_per_work = 2.0;
  spec.l1_bpw = 64.0;
  return spec;
}

sim::WorkloadSpec L2Stressor() {
  sim::WorkloadSpec spec = BaseStressor("stress.l2");
  spec.ops_per_work = 2.0;
  spec.l1_bpw = 64.0;  // fills transit the L1
  spec.l2_bpw = 64.0;
  return spec;
}

sim::WorkloadSpec L3Stressor() {
  sim::WorkloadSpec spec = BaseStressor("stress.l3");
  spec.ops_per_work = 2.0;
  spec.l1_bpw = 64.0;
  spec.l2_bpw = 64.0;
  spec.l3_bpw = 64.0;
  return spec;
}

sim::WorkloadSpec DramStressor() {
  sim::WorkloadSpec spec = BaseStressor("stress.dram");
  // Address generation and limited MLP cap a single thread's streaming rate
  // well below the channel bandwidth; several cores saturate the channel.
  spec.ops_per_work = 36.0;
  spec.l1_bpw = 64.0;
  spec.l2_bpw = 64.0;
  spec.l3_bpw = 64.0;
  spec.dram_bpw = 64.0;
  spec.memory_policy = MemoryPolicy::kLocal;
  return spec;
}

sim::WorkloadSpec RemoteDramStressor(int home_socket) {
  sim::WorkloadSpec spec = DramStressor();
  spec.name = "stress.remote-dram";
  spec.memory_policy = MemoryPolicy::kHomeSocket;
  spec.home_socket = home_socket;
  return spec;
}

sim::WorkloadSpec BackgroundFiller() {
  sim::WorkloadSpec spec = BaseStressor("stress.filler");
  spec.ops_per_work = 1.0;
  spec.l1_bpw = 0.0;
  return spec;
}

std::optional<Placement> FillerPlacement(const MachineTopology& topo,
                                         std::span<const Placement> occupied) {
  std::vector<uint8_t> per_core(static_cast<size_t>(topo.NumCores()), 1);
  int free_cores = topo.NumCores();
  for (const Placement& placement : occupied) {
    for (int c = 0; c < topo.NumCores(); ++c) {
      if (placement.ThreadsOnCore(c) > 0 && per_core[c] > 0) {
        per_core[c] = 0;
        --free_cores;
      }
    }
  }
  if (free_cores == 0) {
    return std::nullopt;
  }
  return Placement(topo, std::move(per_core));
}

}  // namespace stress
}  // namespace pandia
