// Stress applications (paper §3.1–3.2).
//
// Each factory returns a synthetic workload that saturates one resource:
// the CPU stressors run a pipelined integer loop on an L1-resident dataset;
// the bandwidth stressors stream a private array sized for the target level
// (one access per cache line, prefetch-friendly); the DRAM stressor uses an
// array far larger than the LLC. The background filler is the core-local
// CPU-bound load used to pin Turbo Boost at its all-core bin while
// profiling (§6.3).
//
// Demand values model those access patterns: 64-byte lines per iteration,
// with address-generation overhead limiting a single thread's DRAM rate the
// way limited MLP does on real parts.
#ifndef PANDIA_SRC_STRESS_STRESS_H_
#define PANDIA_SRC_STRESS_STRESS_H_

#include <optional>
#include <span>

#include "src/sim/workload_spec.h"
#include "src/topology/placement.h"

namespace pandia {
namespace stress {

// Compute-bound loop, no memory traffic beyond a token L1 stream. Used to
// measure peak core instruction rate and SMT co-run loss, and as the
// per-thread slowdown source in profiling runs 4 and 5 (§4.4).
sim::WorkloadSpec CpuStressor();

// Bandwidth stressors for each level of the hierarchy.
sim::WorkloadSpec L1Stressor();
sim::WorkloadSpec L2Stressor();
sim::WorkloadSpec L3Stressor();

// Streams from local memory (array >= 100x LLC, numactl-bound local).
sim::WorkloadSpec DramStressor();

// Streams from the memory of `home_socket` regardless of where its threads
// run: placed on another socket, all of its traffic crosses the interconnect.
sim::WorkloadSpec RemoteDramStressor(int home_socket);

// Negligible-footprint CPU-bound filler for otherwise-idle cores.
sim::WorkloadSpec BackgroundFiller();

// Placement with one filler thread on every core not used by any of the
// given placements. Returns nullopt when every core is already occupied
// (a filler job needs at least one thread).
std::optional<Placement> FillerPlacement(const MachineTopology& topo,
                                         std::span<const Placement> occupied);

}  // namespace stress
}  // namespace pandia

#endif  // PANDIA_SRC_STRESS_STRESS_H_
