#include "src/workloads/workloads.h"

#include "src/util/check.h"

namespace pandia {
namespace workloads {
namespace {

using sim::BalanceMode;
using sim::WorkloadSpec;

// All workloads perform the same abstract amount of work; t1 differences
// come from their instruction/bandwidth demands, as with real binaries
// whose inputs were chosen for comparable run times (§6).
constexpr double kTotalWork = 1000.0;

WorkloadSpec Base(const char* name) {
  WorkloadSpec spec;
  spec.name = name;
  spec.total_work = kTotalWork;
  // NPB/OMP-style codes initialize their arrays in the parallel loops that
  // later process them, so first-touch keeps each thread's pages local; the
  // shared-data workloads (joins, PageRank) override this with interleaving.
  spec.memory_policy = MemoryPolicy::kLocal;
  return spec;
}

// --- NAS parallel benchmarks [2] ---

WorkloadSpec BT() {
  WorkloadSpec spec = Base("BT");
  // Block tri-diagonal solver: compute-leaning stencil sweeps with regular
  // barriers and moderate memory traffic.
  spec.parallel_fraction = 0.996;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.65;
  spec.l1_bpw = 16.0;
  spec.l2_bpw = 5.0;
  spec.l3_bpw = 0.9;
  spec.dram_bpw = 0.25;
  spec.working_set = 0.5;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0002;
  spec.remote_access_cost = 0.01;
  spec.duty_cycle = 0.9;
  return spec;
}

WorkloadSpec CG() {
  WorkloadSpec spec = Base("CG");
  // Conjugate gradient: irregular sparse matrix-vector products, strongly
  // memory-bound, low IPC.
  spec.parallel_fraction = 0.995;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.5;
  spec.l1_bpw = 20.0;
  spec.l2_bpw = 8.0;
  spec.l3_bpw = 1.9;
  spec.dram_bpw = 0.75;
  spec.working_set = 0.8;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0004;
  spec.remote_access_cost = 0.03;
  spec.duty_cycle = 0.95;
  return spec;
}

WorkloadSpec EP() {
  WorkloadSpec spec = Base("EP");
  // Embarrassingly parallel: pure compute, negligible traffic, dynamic
  // scheduling of independent batches.
  spec.parallel_fraction = 0.9998;
  spec.balance = BalanceMode::kDynamic;
  spec.chunk_fraction = 0.002;
  spec.single_thread_ipc = 0.6;
  spec.l1_bpw = 4.0;
  spec.l2_bpw = 0.3;
  spec.l3_bpw = 0.05;
  spec.dram_bpw = 0.01;
  spec.working_set = 0.005;
  spec.shared_fraction = 0.5;
  spec.remote_access_cost = 0.001;
  spec.memory_policy = MemoryPolicy::kLocal;
  return spec;
}

WorkloadSpec FT() {
  WorkloadSpec spec = Base("FT");
  // 3D FFT: bandwidth-hungry butterflies plus an all-to-all transpose that
  // makes it the most communication-sensitive NPB kernel.
  spec.parallel_fraction = 0.995;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.6;
  spec.l1_bpw = 18.0;
  spec.l2_bpw = 6.0;
  spec.l3_bpw = 1.4;
  spec.dram_bpw = 0.5;
  spec.working_set = 0.9;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0012;
  spec.comm_bytes_per_work = 0.01;
  spec.remote_access_cost = 0.04;
  spec.duty_cycle = 0.9;
  return spec;
}

WorkloadSpec IS() {
  WorkloadSpec spec = Base("IS");
  // Integer sort: bucketed counting sort, DRAM-bound with a key-exchange
  // phase; buckets are handed out dynamically.
  spec.parallel_fraction = 0.99;
  spec.balance = BalanceMode::kDynamic;
  spec.chunk_fraction = 0.004;
  spec.single_thread_ipc = 0.45;
  spec.l1_bpw = 14.0;
  spec.l2_bpw = 6.0;
  spec.l3_bpw = 2.0;
  spec.dram_bpw = 0.85;
  spec.working_set = 0.7;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0009;
  spec.comm_bytes_per_work = 0.012;
  spec.remote_access_cost = 0.05;
  spec.duty_cycle = 0.95;
  return spec;
}

WorkloadSpec LU() {
  WorkloadSpec spec = Base("LU");
  // Lower-upper Gauss-Seidel: pipelined wavefronts, moderately bursty.
  spec.parallel_fraction = 0.993;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.6;
  spec.l1_bpw = 15.0;
  spec.l2_bpw = 5.0;
  spec.l3_bpw = 1.0;
  spec.dram_bpw = 0.3;
  spec.working_set = 0.6;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0003;
  spec.remote_access_cost = 0.02;
  spec.duty_cycle = 0.85;
  return spec;
}

WorkloadSpec MG() {
  WorkloadSpec spec = Base("MG");
  // Multi-grid: long stride sweeps over a mesh hierarchy, bandwidth-bound.
  spec.parallel_fraction = 0.993;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.55;
  spec.l1_bpw = 18.0;
  spec.l2_bpw = 7.0;
  spec.l3_bpw = 1.5;
  spec.dram_bpw = 0.55;
  spec.working_set = 1.1;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0005;
  spec.remote_access_cost = 0.04;
  spec.duty_cycle = 0.9;
  return spec;
}

WorkloadSpec SP() {
  WorkloadSpec spec = Base("SP");
  // Scalar penta-diagonal solver: BT's sibling with higher memory pressure.
  spec.parallel_fraction = 0.995;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.6;
  spec.l1_bpw = 16.0;
  spec.l2_bpw = 6.0;
  spec.l3_bpw = 1.1;
  spec.dram_bpw = 0.4;
  spec.working_set = 0.7;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0003;
  spec.remote_access_cost = 0.02;
  spec.duty_cycle = 0.9;
  return spec;
}

// --- SPEC OMP workloads [24] ---

WorkloadSpec Applu() {
  WorkloadSpec spec = Base("Applu");
  // Parabolic/elliptic PDE solver.
  spec.parallel_fraction = 0.99;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.6;
  spec.l1_bpw = 15.0;
  spec.l2_bpw = 5.0;
  spec.l3_bpw = 1.0;
  spec.dram_bpw = 0.35;
  spec.working_set = 0.6;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0003;
  spec.remote_access_cost = 0.025;
  spec.duty_cycle = 0.9;
  return spec;
}

WorkloadSpec Apsi() {
  WorkloadSpec spec = Base("Apsi");
  // Pollutant-distribution meteorology: compute-leaning, modest footprint,
  // a visible serial fraction.
  spec.parallel_fraction = 0.985;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.65;
  spec.l1_bpw = 12.0;
  spec.l2_bpw = 3.0;
  spec.l3_bpw = 0.6;
  spec.dram_bpw = 0.15;
  spec.working_set = 0.4;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0002;
  spec.remote_access_cost = 0.01;
  return spec;
}

WorkloadSpec Art() {
  WorkloadSpec spec = Base("Art");
  // Neural-network image recognition: famously cache-capacity-sensitive —
  // per-thread working sets overflow the LLC as threads pack together.
  spec.parallel_fraction = 0.995;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.55;
  spec.l1_bpw = 16.0;
  spec.l2_bpw = 6.0;
  spec.l3_bpw = 1.6;
  spec.dram_bpw = 0.2;
  spec.working_set = 3.2;
  spec.shared_fraction = 0.1;
  spec.comm_intensity = 0.0003;
  spec.remote_access_cost = 0.02;
  spec.duty_cycle = 0.9;
  return spec;
}

WorkloadSpec Bwaves() {
  WorkloadSpec spec = Base("Bwaves");
  // Blast-wave CFD: streaming, strongly bandwidth-bound.
  spec.parallel_fraction = 0.997;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.5;
  spec.l1_bpw = 20.0;
  spec.l2_bpw = 8.0;
  spec.l3_bpw = 1.9;
  spec.dram_bpw = 0.8;
  spec.working_set = 0.8;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0004;
  spec.remote_access_cost = 0.04;
  return spec;
}

WorkloadSpec Fma3d() {
  WorkloadSpec spec = Base("FMA-3D");
  // Finite-element crash simulation: irregular elements, bursty demand,
  // a noticeable serial contact-search fraction.
  spec.parallel_fraction = 0.98;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.6;
  spec.l1_bpw = 14.0;
  spec.l2_bpw = 4.5;
  spec.l3_bpw = 0.9;
  spec.dram_bpw = 0.28;
  spec.working_set = 0.5;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0003;
  spec.remote_access_cost = 0.02;
  spec.duty_cycle = 0.8;
  return spec;
}

WorkloadSpec MD() {
  WorkloadSpec spec = Base("MD");
  // Molecular dynamics (Figure 1): compute-dominant force evaluation with
  // work-stealing over particle blocks; scales broadly.
  spec.parallel_fraction = 0.9985;
  spec.balance = BalanceMode::kDynamic;
  spec.chunk_fraction = 0.002;
  spec.single_thread_ipc = 0.7;
  spec.l1_bpw = 12.0;
  spec.l2_bpw = 3.0;
  spec.l3_bpw = 0.5;
  spec.dram_bpw = 0.1;
  spec.working_set = 0.2;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.00025;
  spec.remote_access_cost = 0.01;
  spec.duty_cycle = 0.95;
  return spec;
}

WorkloadSpec Swim() {
  WorkloadSpec spec = Base("Swim");
  // Shallow-water modeling: the textbook stream-limited stencil.
  spec.parallel_fraction = 0.997;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.5;
  spec.l1_bpw = 22.0;
  spec.l2_bpw = 9.0;
  spec.l3_bpw = 2.0;
  spec.dram_bpw = 0.9;
  spec.working_set = 1.3;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0004;
  spec.remote_access_cost = 0.05;
  return spec;
}

WorkloadSpec Wupwise() {
  WorkloadSpec spec = Base("Wupwise");
  // Wilson fermion solver: mixed compute/bandwidth, guided scheduling.
  spec.parallel_fraction = 0.996;
  spec.balance = BalanceMode::kDynamic;
  spec.chunk_fraction = 0.003;
  spec.single_thread_ipc = 0.68;
  spec.l1_bpw = 14.0;
  spec.l2_bpw = 4.0;
  spec.l3_bpw = 0.8;
  spec.dram_bpw = 0.3;
  spec.working_set = 0.45;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0003;
  spec.remote_access_cost = 0.02;
  return spec;
}

// --- Main-memory hash joins, Balkesen et al. [3] ---

WorkloadSpec NPO() {
  WorkloadSpec spec = Base("NPO");
  // No-partitioning join: probes of a shared hash table, heavy random DRAM
  // traffic and cross-socket coherence on the table.
  spec.parallel_fraction = 0.99;
  spec.balance = BalanceMode::kDynamic;
  spec.chunk_fraction = 0.003;
  spec.single_thread_ipc = 0.5;
  spec.l1_bpw = 16.0;
  spec.l2_bpw = 7.0;
  spec.l3_bpw = 1.5;
  spec.dram_bpw = 0.5;
  spec.working_set = 2.0;
  spec.shared_fraction = 0.7;
  spec.comm_intensity = 0.0006;
  spec.comm_bytes_per_work = 0.01;
  spec.remote_access_cost = 0.05;
  spec.duty_cycle = 0.75;
  spec.memory_policy = MemoryPolicy::kInterleaveAll;
  return spec;
}

WorkloadSpec PRH() {
  WorkloadSpec spec = Base("PRH");
  // Parallel radix join (histogram variant): partition passes alternate
  // bursts of bandwidth with compute, then local probes.
  spec.parallel_fraction = 0.985;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.55;
  spec.l1_bpw = 18.0;
  spec.l2_bpw = 7.0;
  spec.l3_bpw = 1.4;
  spec.dram_bpw = 0.5;
  spec.working_set = 0.7;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0004;
  spec.remote_access_cost = 0.04;
  spec.duty_cycle = 0.55;
  spec.memory_policy = MemoryPolicy::kInterleaveAll;
  return spec;
}

WorkloadSpec PRHO() {
  WorkloadSpec spec = Base("PRHO");
  // PRH with software-managed buffers: fewer passes, smoother demand.
  spec.parallel_fraction = 0.99;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.58;
  spec.l1_bpw = 17.0;
  spec.l2_bpw = 6.5;
  spec.l3_bpw = 1.3;
  spec.dram_bpw = 0.45;
  spec.working_set = 0.65;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0004;
  spec.remote_access_cost = 0.035;
  spec.duty_cycle = 0.6;
  spec.memory_policy = MemoryPolicy::kInterleaveAll;
  return spec;
}

WorkloadSpec PRO() {
  WorkloadSpec spec = Base("PRO");
  // Radix join with task queues: dynamic partition assignment.
  spec.parallel_fraction = 0.99;
  spec.balance = BalanceMode::kDynamic;
  spec.chunk_fraction = 0.004;
  spec.single_thread_ipc = 0.58;
  spec.l1_bpw = 17.0;
  spec.l2_bpw = 6.0;
  spec.l3_bpw = 1.2;
  spec.dram_bpw = 0.4;
  spec.working_set = 0.6;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0004;
  spec.remote_access_cost = 0.035;
  spec.duty_cycle = 0.65;
  spec.memory_policy = MemoryPolicy::kInterleaveAll;
  return spec;
}

WorkloadSpec SortJoin() {
  WorkloadSpec spec = Base("Sort-Join");
  // Sort-merge join with AVX bitonic kernels (§6.1: peaks at 32 threads on
  // the X5-2; §6.2: omitted on Westmere for lacking AVX): a single thread
  // nearly saturates the vector units, so SMT sharing only collides.
  spec.parallel_fraction = 0.99;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.95;
  spec.l1_bpw = 14.0;
  spec.l2_bpw = 5.0;
  spec.l3_bpw = 1.0;
  spec.dram_bpw = 0.35;
  spec.working_set = 0.9;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0007;
  spec.remote_access_cost = 0.06;
  spec.duty_cycle = 0.5;
  spec.memory_policy = MemoryPolicy::kInterleaveAll;
  return spec;
}

// --- In-memory graph analytics [14] ---

WorkloadSpec PageRank() {
  WorkloadSpec spec = Base("PageRank");
  // Parallel PageRank over Callisto-style fine-grain loops: irregular
  // bandwidth-bound gathers over a shared graph, fine-grained stealing.
  spec.parallel_fraction = 0.997;
  spec.balance = BalanceMode::kDynamic;
  spec.chunk_fraction = 0.0015;
  spec.single_thread_ipc = 0.45;
  spec.l1_bpw = 18.0;
  spec.l2_bpw = 8.0;
  spec.l3_bpw = 1.6;
  spec.dram_bpw = 0.6;
  spec.working_set = 2.5;
  spec.shared_fraction = 0.7;
  spec.comm_intensity = 0.0008;
  spec.comm_bytes_per_work = 0.012;
  spec.remote_access_cost = 0.06;
  spec.duty_cycle = 0.9;
  spec.memory_policy = MemoryPolicy::kInterleaveAll;
  return spec;
}

}  // namespace

std::vector<WorkloadSpec> EvaluationSuite() {
  // Figure 11 order (alphabetical as in the paper's bar charts).
  return {Applu(),  Apsi(), Art(),      BT(),       Bwaves(), CG(),
          EP(),     Fma3d(), FT(),      IS(),       LU(),     MD(),
          MG(),     NPO(),  PRH(),      PRHO(),     PRO(),    PageRank(),
          SortJoin(), SP(), Swim(),     Wupwise()};
}

std::vector<std::string> DevelopmentSet() { return {"BT", "CG", "IS", "MD"}; }

sim::WorkloadSpec NpoSingleThreaded() {
  WorkloadSpec spec = NPO();
  // One thread does all the work; the others stay idle after initialization
  // (§6.3, Figure 13a) but still spread the data across their sockets.
  spec.name = "NPO-1T";
  spec.max_active_threads = 1;
  return spec;
}

sim::WorkloadSpec Equake() {
  WorkloadSpec spec = Base("Equake");
  // Earthquake FEM: the reduction step adds work with every extra thread,
  // violating the constant-work assumption (§6.3, Figure 13b/c).
  spec.parallel_fraction = 0.98;
  spec.balance = BalanceMode::kStatic;
  spec.single_thread_ipc = 0.6;
  spec.l1_bpw = 14.0;
  spec.l2_bpw = 5.0;
  spec.l3_bpw = 0.9;
  spec.dram_bpw = 0.3;
  spec.working_set = 0.6;
  spec.shared_fraction = 0.5;
  spec.comm_intensity = 0.0003;
  spec.remote_access_cost = 0.02;
  spec.duty_cycle = 0.9;
  spec.work_growth = 0.05;
  return spec;
}

sim::WorkloadSpec BtSmall() {
  WorkloadSpec spec = BT();
  // BT with its smallest dataset (§6.4): the main parallel loop has only 64
  // iterations before a barrier, so between 32 and 64 threads extra threads
  // add nothing.
  spec.name = "BT-small";
  spec.total_work = 250.0;
  spec.parallel_quanta = 64;
  return spec;
}

bool Exists(const std::string& name) {
  for (const WorkloadSpec& spec : EvaluationSuite()) {
    if (spec.name == name) {
      return true;
    }
  }
  return name == "NPO-1T" || name == "Equake" || name == "BT-small";
}

sim::WorkloadSpec ByName(const std::string& name) {
  for (const WorkloadSpec& spec : EvaluationSuite()) {
    if (spec.name == name) {
      return spec;
    }
  }
  if (name == "NPO-1T") {
    return NpoSingleThreaded();
  }
  if (name == "Equake") {
    return Equake();
  }
  if (name == "BT-small") {
    return BtSmall();
  }
  PANDIA_CHECK_MSG(false, "unknown workload name");
}

}  // namespace workloads
}  // namespace pandia
