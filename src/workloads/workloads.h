// The evaluation workload suite (paper §6).
//
// Ground-truth specs standing in for the paper's 22 benchmark binaries —
// NPB [2], SPEC OMP [24], the Balkesen et al. hash joins [3], and in-memory
// graph analytics [14] — plus the two §6.3 limit studies (single-threaded
// NPO and equake). Each spec encodes the published character of its
// benchmark: compute vs bandwidth intensity, parallel fraction, balancing
// discipline, cache footprint, communication behaviour, and burstiness.
//
// Pandia's pipeline treats these as opaque binaries: only the simulator
// reads the fields.
#ifndef PANDIA_SRC_WORKLOADS_WORKLOADS_H_
#define PANDIA_SRC_WORKLOADS_WORKLOADS_H_

#include <string>
#include <vector>

#include "src/sim/workload_spec.h"

namespace pandia {
namespace workloads {

// The paper's 22 evaluation workloads, in the order of Figure 11's x-axis.
std::vector<sim::WorkloadSpec> EvaluationSuite();

// The 4 workloads studied while developing Pandia (§6: BT, CG, IS, MD);
// the remaining 18 form the test set.
std::vector<std::string> DevelopmentSet();

// §6.3/§6.4 limit studies.
sim::WorkloadSpec NpoSingleThreaded();  // non-scaling workload (Figure 13a)
sim::WorkloadSpec Equake();             // work grows with threads (Figure 13b/c)
sim::WorkloadSpec BtSmall();            // 64-iteration parallel loop: the
                                        // discontinuous-scaling case of §6.4

// Lookup by name across the suite and the limit studies; aborts on unknown
// names. CLI front-ends should check Exists() first.
sim::WorkloadSpec ByName(const std::string& name);

// True when ByName(name) would succeed.
bool Exists(const std::string& name);

}  // namespace workloads
}  // namespace pandia

#endif  // PANDIA_SRC_WORKLOADS_WORKLOADS_H_
